"""Tests for the Section VIII-F authentication layer (TLS over APNA)."""

import pytest

from repro.core.keys import SigningKeyPair
from repro.core.session import Session
from repro.crypto.rng import DeterministicRng
from repro.tls import (
    Attestation,
    AuthRequest,
    DomainCertificate,
    TlsAuthError,
    WebCa,
    attest,
    channel_binding,
    verify_attestation,
)
from repro.tls.ca import DomainCertError


@pytest.fixture()
def pki():
    rng = DeterministicRng("tls")
    ca = WebCa(rng)
    domain_keys = SigningKeyPair.generate(rng)
    cert = ca.issue("shop.example", domain_keys.public, exp_time=10_000)
    return rng, ca, domain_keys, cert


@pytest.fixture()
def sessions(world):
    """An honest client/server session pair (same key on both ends)."""
    alice = world.hosts["alice"]
    bob = world.hosts["bob"]
    alice_owned = alice.acquire_ephid_direct()
    bob_owned = bob.acquire_ephid_direct()
    client = Session(alice_owned, bob_owned.cert)
    server = Session(bob_owned, alice_owned.cert)
    return world, alice, bob, client, server


class TestDomainCertificates:
    def test_issue_and_verify(self, pki):
        _rng, ca, _keys, cert = pki
        cert.verify(ca.public_key, now=0.0)
        assert ca.issued == 1

    def test_pack_parse_roundtrip(self, pki):
        _rng, _ca, _keys, cert = pki
        parsed = DomainCertificate.parse(cert.pack())
        assert parsed == cert

    def test_wrong_ca_rejected(self, pki):
        rng, _ca, _keys, cert = pki
        other_ca = WebCa(rng)
        with pytest.raises(DomainCertError):
            cert.verify(other_ca.public_key)

    def test_expiry_enforced(self, pki):
        _rng, ca, _keys, cert = pki
        with pytest.raises(DomainCertError):
            cert.verify(ca.public_key, now=20_000.0)

    def test_tampered_name_rejected(self, pki):
        _rng, ca, _keys, cert = pki
        forged = DomainCertificate(
            "evil.example", cert.sig_public, cert.exp_time, cert.signature
        )
        with pytest.raises(DomainCertError):
            forged.verify(ca.public_key)

    def test_rejects_empty_name(self, pki):
        _rng, _ca, keys, _cert = pki
        with pytest.raises(DomainCertError):
            DomainCertificate("", keys.public)

    def test_rejects_overlong_name(self, pki):
        _rng, _ca, keys, _cert = pki
        with pytest.raises(DomainCertError):
            DomainCertificate("x" * 300, keys.public)

    def test_parse_truncated(self, pki):
        _rng, _ca, _keys, cert = pki
        with pytest.raises(DomainCertError):
            DomainCertificate.parse(cert.pack()[:10])


class TestMessages:
    def test_auth_request_roundtrip(self):
        request = AuthRequest.create("shop.example", DeterministicRng(5))
        assert AuthRequest.parse(request.pack()) == request

    def test_auth_request_bad_nonce(self):
        with pytest.raises(TlsAuthError):
            AuthRequest("shop.example", b"short")

    def test_auth_request_parse_truncated(self):
        request = AuthRequest.create("shop.example", DeterministicRng(5))
        with pytest.raises(TlsAuthError):
            AuthRequest.parse(request.pack()[:-4])

    def test_attestation_roundtrip(self, pki, sessions):
        rng, _ca, domain_keys, cert = pki
        _world, _alice, _bob, client, server = sessions
        request = AuthRequest.create("shop.example", rng)
        attestation = attest(server, request, cert, domain_keys, rng)
        parsed = Attestation.parse(attestation.pack())
        assert parsed.cert == attestation.cert
        assert parsed.signature == attestation.signature

    def test_attestation_parse_garbage(self):
        with pytest.raises(TlsAuthError):
            Attestation.parse(b"")
        with pytest.raises(TlsAuthError):
            Attestation.parse(b"\x00\x05tiny")


class TestChannelBinding:
    def test_both_ends_agree(self, sessions):
        _world, _alice, _bob, client, server = sessions
        assert channel_binding(client) == channel_binding(server)

    def test_labels_separate(self, sessions):
        _world, _alice, _bob, client, _server = sessions
        assert channel_binding(client, b"a") != channel_binding(client, b"b")

    def test_different_sessions_differ(self, sessions):
        world, alice, bob, client, _server = sessions
        other = Session(
            alice.acquire_ephid_direct(), bob.acquire_ephid_direct().cert
        )
        assert channel_binding(client) != channel_binding(other)


class TestHandshake:
    def test_honest_server_authenticates(self, pki, sessions):
        rng, ca, domain_keys, cert = pki
        _world, _alice, _bob, client, server = sessions
        request = AuthRequest.create("shop.example", rng)
        attestation = attest(server, request, cert, domain_keys, rng)
        verify_attestation(client, request, attestation, ca.public_key, now=0.0)

    def test_no_second_key_exchange_needed(self, pki, sessions):
        # The paper's point: the APNA session key is reused; the
        # handshake adds exactly one signature + one verification.
        _rng, _ca, _keys, _cert = pki
        _world, _alice, _bob, client, server = sessions
        assert client.key == server.key

    def test_name_mismatch_rejected(self, pki, sessions):
        rng, ca, domain_keys, cert = pki
        _world, _alice, _bob, client, server = sessions
        request = AuthRequest.create("bank.example", rng)
        attestation = attest(server, request, cert, domain_keys, rng)
        with pytest.raises(TlsAuthError, match="names"):
            verify_attestation(client, request, attestation, ca.public_key)

    def test_unknown_ca_rejected(self, pki, sessions):
        rng, _ca, domain_keys, cert = pki
        _world, _alice, _bob, client, server = sessions
        request = AuthRequest.create("shop.example", rng)
        attestation = attest(server, request, cert, domain_keys, rng)
        rogue_ca = WebCa(rng)
        with pytest.raises(TlsAuthError):
            verify_attestation(client, request, attestation, rogue_ca.public_key)

    def test_expired_cert_rejected(self, pki, sessions):
        rng, ca, domain_keys, cert = pki
        _world, _alice, _bob, client, server = sessions
        request = AuthRequest.create("shop.example", rng)
        attestation = attest(server, request, cert, domain_keys, rng)
        with pytest.raises(TlsAuthError):
            verify_attestation(
                client, request, attestation, ca.public_key, now=99_999.0
            )

    def test_nonce_replay_rejected(self, pki, sessions):
        # An attestation for one request does not verify for another.
        rng, ca, domain_keys, cert = pki
        _world, _alice, _bob, client, server = sessions
        request_one = AuthRequest.create("shop.example", rng)
        attestation = attest(server, request_one, cert, domain_keys, rng)
        request_two = AuthRequest.create("shop.example", rng)
        with pytest.raises(TlsAuthError):
            verify_attestation(client, request_two, attestation, ca.public_key)

    def test_intra_domain_mitm_detected(self, pki, sessions):
        # Section VI-B: "the AS can perform MitM attacks to decrypt
        # communication between the hosts ... The two hosts can use
        # security protocols in higher layers (e.g., TLS)".  The channel
        # binding closes exactly this gap: the AS terminates two
        # sessions, so the attestation it relays verifies on neither.
        rng, ca, domain_keys, cert = pki
        world, alice, bob, _client, _server = sessions

        # The malicious AS mints its own EphIDs and fakes both certs.
        mitm_client_leg_id = alice.acquire_ephid_direct()
        mitm_server_leg_id = alice.acquire_ephid_direct()
        victim_owned = alice.acquire_ephid_direct()
        server_owned = bob.acquire_ephid_direct()

        victim_session = Session(victim_owned, mitm_client_leg_id.cert)
        mitm_to_server = Session(mitm_server_leg_id, server_owned.cert)
        server_session = Session(server_owned, mitm_server_leg_id.cert)

        request = AuthRequest.create("shop.example", rng)
        # The honest server attests over *its* session with the MitM...
        attestation = attest(server_session, request, cert, domain_keys, rng)
        assert channel_binding(mitm_to_server) == channel_binding(server_session)
        # ...and the relayed attestation fails on the victim's session.
        with pytest.raises(TlsAuthError, match="channel binding"):
            verify_attestation(victim_session, request, attestation, ca.public_key)

    def test_attestation_over_wrong_session_rejected(self, pki, sessions):
        rng, ca, domain_keys, cert = pki
        world, alice, bob, client, _server = sessions
        unrelated = Session(
            bob.acquire_ephid_direct(), alice.acquire_ephid_direct().cert
        )
        request = AuthRequest.create("shop.example", rng)
        attestation = attest(unrelated, request, cert, domain_keys, rng)
        with pytest.raises(TlsAuthError):
            verify_attestation(client, request, attestation, ca.public_key)
