"""Tests for the declarative topology layer (`repro.topology`)."""

import pytest

from repro import ApnaError
from repro.topology import (
    AsSpec,
    DuplicateHostError,
    HostSpec,
    LinkSpec,
    TopologyError,
    TopologySpec,
    UnknownAsError,
    World,
    WorldBuilder,
)


class TestTopologySpec:
    def test_validate_accepts_well_formed(self):
        spec = TopologySpec(
            ases=(AsSpec("a", 100), AsSpec("b", 200)),
            links=(LinkSpec("a", "b"),),
            hosts=(HostSpec("alice", "a"),),
        )
        assert spec.validate() is spec

    def test_empty_topology_rejected(self):
        with pytest.raises(TopologyError):
            TopologySpec().validate()

    def test_duplicate_as_names_rejected(self):
        spec = TopologySpec(ases=(AsSpec("a", 100), AsSpec("a", 200)))
        with pytest.raises(TopologyError, match="duplicate AS name"):
            spec.validate()

    def test_duplicate_aids_rejected(self):
        spec = TopologySpec(ases=(AsSpec("a", 100), AsSpec("b", 100)))
        with pytest.raises(TopologyError, match="duplicate AID"):
            spec.validate()

    def test_link_to_unknown_as_rejected(self):
        spec = TopologySpec(
            ases=(AsSpec("a", 100),), links=(LinkSpec("a", "ghost"),)
        )
        with pytest.raises(UnknownAsError, match="ghost"):
            spec.validate()

    def test_self_link_rejected(self):
        spec = TopologySpec(ases=(AsSpec("a", 100),), links=(LinkSpec("a", "a"),))
        with pytest.raises(TopologyError):
            spec.validate()

    def test_duplicate_link_rejected_even_reversed(self):
        ases = (AsSpec("a", 100), AsSpec("b", 200))
        spec = TopologySpec(
            ases=ases, links=(LinkSpec("a", "b"), LinkSpec("b", "a", latency=0.5))
        )
        with pytest.raises(TopologyError, match="duplicate link"):
            spec.validate()

    def test_duplicate_host_names_rejected(self):
        spec = TopologySpec(
            ases=(AsSpec("a", 100),),
            hosts=(HostSpec("h", "a"), HostSpec("h", "a")),
        )
        with pytest.raises(TopologyError, match="duplicate host name"):
            spec.validate()

    def test_host_on_unknown_as_rejected(self):
        spec = TopologySpec(ases=(AsSpec("a", 100),), hosts=(HostSpec("h", "x"),))
        with pytest.raises(UnknownAsError):
            spec.validate()

    def test_unknown_policy_rejected(self):
        spec = TopologySpec(
            ases=(AsSpec("a", 100),),
            hosts=(HostSpec("h", "a", policy="per-galaxy"),),
        )
        with pytest.raises(TopologyError, match="per-galaxy"):
            spec.validate()

    def test_single_as_chain_allowed(self):
        spec = TopologySpec.chain(1)
        assert len(spec.ases) == 1
        assert spec.links == ()
        world = World.from_spec(spec, seed=1)
        # at= may be omitted in a single-AS world.
        host = world.attach_host("loner")
        assert world.hosts["loner"] is host

    def test_chain_preset_matches_old_aid_plan(self):
        spec = TopologySpec.chain(4)
        assert [a.aid for a in spec.ases] == [100, 200, 300, 400]
        assert len(spec.links) == 3

    def test_transit_stub_preset_shape(self):
        spec = TopologySpec.transit_stub(3, 2)
        assert [a.aid for a in spec.ases[:3]] == [1, 2, 3]
        assert len(spec.ases) == 9
        # full-mesh core (3 links) + 6 edge links
        assert len(spec.links) == 3 + 6


class TestWorldBuilder:
    def test_issue_style_fluent_chain(self):
        world = (
            WorldBuilder(seed=7)
            .transit("T1")
            .stub("S1", parent="T1")
            .host("alice", at="S1")
            .build()
        )
        assert isinstance(world, World)
        assert world.as_names() == ["T1", "S1"]
        assert world.asys("T1").aid == 1  # transit auto-AIDs count from 1
        assert world.asys("S1").aid == 100
        assert world.host("alice").assembly is world.asys("S1")

    def test_auto_aids_skip_taken_values(self):
        builder = WorldBuilder().transit("t1", aid=1).transit("t2").asys("s", aid=100)
        builder.asys("s2")
        spec = builder.link("t1", "t2").spec()
        aids = {a.name: a.aid for a in spec.ases}
        assert aids == {"t1": 1, "t2": 2, "s": 100, "s2": 200}

    def test_duplicate_as_name_rejected_immediately(self):
        builder = WorldBuilder().asys("a")
        with pytest.raises(TopologyError, match="already declared"):
            builder.asys("a")

    def test_duplicate_aid_rejected_immediately(self):
        builder = WorldBuilder().asys("a", aid=5)
        with pytest.raises(TopologyError, match="already taken"):
            builder.asys("b", aid=5)

    def test_duplicate_host_rejected_immediately(self):
        builder = WorldBuilder().asys("a").host("h", at="a")
        with pytest.raises(TopologyError, match="already declared"):
            builder.host("h", at="a")

    def test_link_to_undeclared_as_rejected(self):
        with pytest.raises(UnknownAsError):
            WorldBuilder().asys("a").link("a", "nowhere")

    def test_self_and_duplicate_links_rejected_immediately(self):
        builder = WorldBuilder().asys("a").asys("b").link("a", "b")
        with pytest.raises(TopologyError, match="itself"):
            builder.link("a", "a")
        with pytest.raises(TopologyError, match="duplicate link"):
            builder.link("b", "a")

    def test_host_on_undeclared_as_rejected(self):
        with pytest.raises(UnknownAsError):
            WorldBuilder().asys("a").host("h", at="nowhere")

    def test_built_world_routes_end_to_end(self):
        world = (
            WorldBuilder(seed=3)
            .transit("hub")
            .stub("left", parent="hub")
            .stub("right", parent="hub")
            .host("alice", at="left")
            .host("bob", at="right")
            .build()
        )
        alice, bob = world.host("alice"), world.host("bob")
        received = []
        bob.listen(80, lambda session, transport, data: received.append(data))
        peer = bob.acquire_ephid_direct()
        alice.connect(peer.cert, early_data=b"via the hub", dst_port=80)
        world.run()
        assert received == [b"via the hub"]
        assert world.as_path("left", "right") == [100, 1, 200]

    def test_host_policy_resolved_by_name(self):
        world = (
            WorldBuilder(seed=1)
            .asys("a")
            .host("h", at="a", policy="per-host")
            .build()
        )
        assert world.host("h").policy.name == "per-host"

    def test_deterministic_for_equal_seeds(self):
        make = lambda: WorldBuilder(seed=9).asys("x").asys("y").link("x", "y").build()
        one, two = make(), make()
        assert one.ases[0].keys.signing.public == two.ases[0].keys.signing.public


class TestWorldAddressing:
    @pytest.fixture()
    def world(self):
        return (
            WorldBuilder(seed=2)
            .asys("a", aid=100)
            .asys("b", aid=200)
            .link("a", "b")
            .build()
        )

    def test_asys_resolves_name_aid_and_object(self, world):
        by_name = world.asys("a")
        assert world.asys(100) is by_name
        assert world.asys(by_name) is by_name
        assert world.as_by_name("b") is world.as_by_aid(200)

    def test_unknown_as_error_lists_known_names(self, world):
        with pytest.raises(UnknownAsError) as excinfo:
            world.attach_host("h", at="c")
        message = str(excinfo.value)
        assert "'c'" in message and "a" in message and "b" in message

    def test_unknown_as_error_is_value_and_key_error(self, world):
        with pytest.raises(ValueError):
            world.asys("ghost")
        with pytest.raises(KeyError):
            world.as_by_aid(999)

    def test_attach_host_requires_at_with_multiple_ases(self, world):
        with pytest.raises(TopologyError, match="at="):
            world.attach_host("h")

    def test_attach_host_by_aid(self, world):
        host = world.attach_host("h", at=200)
        assert host.assembly.aid == 200

    def test_duplicate_host_raises_apna_error(self, world):
        world.attach_host("alice", at="a")
        with pytest.raises(DuplicateHostError):
            world.attach_host("alice", at="b")
        with pytest.raises(ApnaError):
            world.attach_host("alice", at="a")
        assert world.host("alice").assembly.aid == 100  # original intact

    def test_host_lookup_error_lists_attached(self, world):
        world.attach_host("alice", at="a")
        with pytest.raises(ApnaError, match="alice"):
            world.host("bob")

    def test_as_a_as_b_on_two_as_world(self, world):
        assert world.as_a.aid == 100
        assert world.as_b.aid == 200

    def test_as_a_undefined_on_other_shapes(self):
        world = World.from_spec(TopologySpec.chain(3), seed=1)
        with pytest.raises(TopologyError, match="two-AS"):
            world.as_a


class TestWorldLifecycle:
    def test_advance_moves_virtual_time(self):
        world = WorldBuilder(seed=1).asys("a").build()
        assert world.now == 0.0
        world.advance(1.5)
        assert world.now == pytest.approx(1.5)
        with pytest.raises(ValueError):
            world.advance(-1.0)

    def test_run_drains_events(self):
        world = (
            WorldBuilder(seed=4)
            .asys("a")
            .asys("b")
            .link("a", "b")
            .host("alice", at="a")
            .host("bob", at="b")
            .build()
        )
        bob = world.host("bob")
        peer = bob.acquire_ephid_direct()
        world.host("alice").connect(peer.cert, early_data=b"x", dst_port=80)
        assert world.run() > 0
        assert world.network.scheduler.pending == 0
