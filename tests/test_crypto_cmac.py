"""AES-CMAC tests pinned to the RFC 4493 vectors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.cmac import Cmac, PureCmac, cmac

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
MSG_64 = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710"
)

RFC4493_VECTORS = [
    (b"", "bb1d6929e95937287fa37d129b756746"),
    (MSG_64[:16], "070a16b46b4d4144f79bdd9dd04a287c"),
    (MSG_64[:40], "dfa66747de9ae63030ca32611497c827"),
    (MSG_64, "51f0bebf7e3b9d92fc49741779363cfe"),
]


@pytest.mark.parametrize("message,tag", RFC4493_VECTORS)
def test_rfc4493_vectors(message, tag):
    assert cmac(KEY, message).hex() == tag


def test_subkeys_match_rfc4493():
    # Subkey derivation is a pure-implementation detail (the OpenSSL
    # backend keeps K1/K2 inside the EVP context).
    mac = PureCmac(KEY)
    assert mac._k1.hex() == "fbeed618357133667c85e08f7236a8de"
    assert mac._k2.hex() == "f7ddac306ae266ccf90bc11ee46d513b"


def test_truncated_tag_is_prefix():
    full = cmac(KEY, b"hello world")
    assert cmac(KEY, b"hello world", length=8) == full[:8]


def test_truncation_bounds():
    with pytest.raises(ValueError):
        cmac(KEY, b"x", length=0)
    with pytest.raises(ValueError):
        cmac(KEY, b"x", length=17)


def test_verify_accepts_and_rejects():
    mac = Cmac(KEY)
    tag = mac.tag(b"packet payload", 8)
    assert mac.verify(b"packet payload", tag)
    assert not mac.verify(b"packet payloae", tag)
    assert not mac.verify(b"packet payload", bytes(8))


@settings(max_examples=50, deadline=None)
@given(
    key=st.binary(min_size=16, max_size=16),
    message=st.binary(min_size=0, max_size=300),
)
def test_tag_verifies(key, message):
    mac = Cmac(key)
    assert mac.verify(message, mac.tag(message))


@settings(max_examples=50, deadline=None)
@given(
    key=st.binary(min_size=16, max_size=16),
    message=st.binary(min_size=1, max_size=100),
    flip=st.integers(min_value=0),
)
def test_any_bit_flip_is_detected(key, message, flip):
    mac = Cmac(key)
    tag = mac.tag(message)
    position = flip % (len(message) * 8)
    tampered = bytearray(message)
    tampered[position // 8] ^= 1 << (position % 8)
    assert not mac.verify(bytes(tampered), tag)


def test_length_extension_distinct():
    # m1 padded differently from m1||pad must not collide (RFC 4493 K1/K2 split).
    mac = Cmac(KEY)
    assert mac.tag(bytes(16)) != mac.tag(bytes(16) + b"\x80" + bytes(15))
