"""Tests for the AEAD abstraction, RNGs and byte utilities."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aead import EtmScheme, GcmScheme, new_aead
from repro.crypto.rng import DeterministicRng, SystemRng
from repro.crypto.util import ct_eq, inc_counter, xor_bytes


@pytest.mark.parametrize("scheme", ["etm", "gcm"])
def test_aead_roundtrip(scheme):
    aead = new_aead(bytes(range(32)), scheme)
    nonce = bytes(12)
    sealed = aead.seal(nonce, b"secret payload", b"header")
    assert aead.open(nonce, sealed, b"header") == b"secret payload"


@pytest.mark.parametrize("scheme", ["etm", "gcm"])
def test_aead_rejects_wrong_aad(scheme):
    aead = new_aead(bytes(range(32)), scheme)
    sealed = aead.seal(bytes(12), b"data", b"aad")
    with pytest.raises(ValueError):
        aead.open(bytes(12), sealed, b"other")


@pytest.mark.parametrize("scheme", ["etm", "gcm"])
def test_aead_rejects_wrong_nonce(scheme):
    aead = new_aead(bytes(range(32)), scheme)
    sealed = aead.seal(bytes(12), b"data")
    with pytest.raises(ValueError):
        aead.open(b"\x01" + bytes(11), sealed)


def test_new_aead_rejects_unknown_scheme():
    with pytest.raises(ValueError):
        new_aead(bytes(32), "rot13")


def test_etm_and_gcm_are_incompatible():
    # Same key, same nonce: the two schemes must not accept each other's output.
    key = bytes(range(32))
    sealed = EtmScheme(key).seal(bytes(12), b"payload")
    with pytest.raises(ValueError):
        GcmScheme(key).open(bytes(12), sealed)


def test_etm_ciphertext_hides_plaintext():
    aead = EtmScheme(bytes(range(32)))
    sealed = aead.seal(bytes(12), b"A" * 64)
    assert b"A" * 8 not in sealed


@settings(max_examples=30, deadline=None)
@given(
    key=st.binary(min_size=32, max_size=32),
    nonce=st.binary(min_size=12, max_size=12),
    plaintext=st.binary(max_size=120),
    aad=st.binary(max_size=40),
)
def test_etm_property_roundtrip(key, nonce, plaintext, aad):
    aead = EtmScheme(key)
    assert aead.open(nonce, aead.seal(nonce, plaintext, aad), aad) == plaintext


@settings(max_examples=30, deadline=None)
@given(
    key=st.binary(min_size=32, max_size=32),
    nonce=st.binary(min_size=12, max_size=12),
    plaintext=st.binary(min_size=1, max_size=60),
    flip=st.integers(min_value=0),
)
def test_etm_tamper_detected(key, nonce, plaintext, flip):
    aead = EtmScheme(key)
    sealed = bytearray(aead.seal(nonce, plaintext))
    sealed[flip % len(sealed)] ^= 0x80
    with pytest.raises(ValueError):
        aead.open(nonce, bytes(sealed))


def test_deterministic_rng_reproducible():
    a = DeterministicRng(1234)
    b = DeterministicRng(1234)
    assert a.read(100) == b.read(100)
    assert a.randint(10**9) == b.randint(10**9)


def test_deterministic_rng_seed_types():
    assert DeterministicRng(b"seed").read(8) == DeterministicRng(b"seed").read(8)
    assert DeterministicRng("seed").read(8) != DeterministicRng("other").read(8)
    assert DeterministicRng(7).read(8) != DeterministicRng(8).read(8)


def test_deterministic_rng_uniform_range():
    rng = DeterministicRng(99)
    samples = [rng.uniform() for _ in range(200)]
    assert all(0.0 <= s < 1.0 for s in samples)
    assert 0.3 < sum(samples) / len(samples) < 0.7


def test_system_rng_basic():
    rng = SystemRng()
    assert len(rng.read(16)) == 16
    assert 0 <= rng.randint(100) < 100
    with pytest.raises(ValueError):
        rng.randint(0)


def test_rng_randint_rejects_nonpositive():
    with pytest.raises(ValueError):
        DeterministicRng(1).randint(-5)


def test_ct_eq():
    assert ct_eq(b"abc", b"abc")
    assert not ct_eq(b"abc", b"abd")
    assert not ct_eq(b"abc", b"abcd")
    assert ct_eq(b"", b"")


def test_xor_bytes():
    assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"
    with pytest.raises(ValueError):
        xor_bytes(b"\x00", b"\x00\x00")


def test_inc_counter_wraps():
    assert inc_counter(bytes(16)) == bytes(15) + b"\x01"
    assert inc_counter(b"\xff" * 16) == bytes(16)
    assert inc_counter(b"\xff" * 4, width=4) == bytes(4)
