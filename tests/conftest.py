"""Shared fixtures: deterministic single- and two-AS worlds."""

from types import SimpleNamespace

import pytest

from repro.core.autonomous_system import ApnaAutonomousSystem
from repro.core.config import ApnaConfig
from repro.core.rpki import RpkiDirectory, TrustAnchor
from repro.crypto.rng import DeterministicRng
from repro.netsim import Network


def build_world(*, seed=7, config=None, host_names=("alice", "bob"), latency=0.010):
    """Two peered ASes (AID 100 and 200) with one bootstrapped host each."""
    rng = DeterministicRng(seed)
    network = Network()
    config = config or ApnaConfig()
    anchor = TrustAnchor(rng)
    rpki = RpkiDirectory(anchor.public_key, network.scheduler.clock())
    as_a = ApnaAutonomousSystem(100, network, rpki, anchor, config=config, rng=rng)
    as_b = ApnaAutonomousSystem(200, network, rpki, anchor, config=config, rng=rng)
    as_a.connect_to(as_b, latency=latency, bandwidth=1e9)

    hosts = {}
    for i, name in enumerate(host_names):
        assembly = as_a if i % 2 == 0 else as_b
        host = assembly.attach_host(name, latency=0.001, bandwidth=1e8)
        host.bootstrap()
        hosts[name] = host
    network.compute_routes()
    return SimpleNamespace(
        rng=rng,
        network=network,
        anchor=anchor,
        rpki=rpki,
        as_a=as_a,
        as_b=as_b,
        hosts=hosts,
        config=config,
    )


@pytest.fixture()
def world():
    return build_world()


@pytest.fixture()
def world_with_nonces():
    return build_world(config=ApnaConfig(replay_protection=True))
