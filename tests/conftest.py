"""Shared fixtures: deterministic single- and two-AS worlds, plus the
watchdog that keeps multi-process sharding/fault tests from hanging CI."""

import signal
from types import SimpleNamespace

import pytest

from repro.core.autonomous_system import ApnaAutonomousSystem
from repro.core.config import ApnaConfig
from repro.core.rpki import RpkiDirectory, TrustAnchor
from repro.crypto.rng import DeterministicRng
from repro.netsim import Network

#: Test files that drive worker *processes* — the only tests that can
#: genuinely wedge (a worker stuck on a pipe the dispatcher never
#: reads).  Everything else is pure in-process simulation.
_WATCHDOG_FILES = (
    "test_evaluation.py",
    "test_sharding.py",
    "test_sharding_equivalence.py",
    "test_sharding_faults.py",
)
_WATCHDOG_SECONDS = 120


@pytest.fixture(autouse=True)
def _shard_test_watchdog(request):
    """SIGALRM watchdog for the sharding/fault suites.

    ``pytest-timeout`` is not in the container, so this is the
    no-dependency equivalent: any sharding test that deadlocks (worker
    and dispatcher each waiting on the other's pipe) is killed after
    ``_WATCHDOG_SECONDS`` with a stack-bearing failure instead of
    hanging the whole run.  SIGALRM is process-wide, so the fixture
    arms it only for the files that spawn workers, and only where the
    platform has it (it is a no-op guard everywhere else).
    """
    if request.node.path.name not in _WATCHDOG_FILES or not hasattr(
        signal, "SIGALRM"
    ):
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"{request.node.nodeid} exceeded the {_WATCHDOG_SECONDS}s "
            "sharding watchdog — dispatcher/worker deadlock?"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(_WATCHDOG_SECONDS)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def build_world(*, seed=7, config=None, host_names=("alice", "bob"), latency=0.010):
    """Two peered ASes (AID 100 and 200) with one bootstrapped host each."""
    rng = DeterministicRng(seed)
    network = Network()
    config = config or ApnaConfig()
    anchor = TrustAnchor(rng)
    rpki = RpkiDirectory(anchor.public_key, network.scheduler.clock())
    as_a = ApnaAutonomousSystem(100, network, rpki, anchor, config=config, rng=rng)
    as_b = ApnaAutonomousSystem(200, network, rpki, anchor, config=config, rng=rng)
    as_a.connect_to(as_b, latency=latency, bandwidth=1e9)

    hosts = {}
    for i, name in enumerate(host_names):
        assembly = as_a if i % 2 == 0 else as_b
        host = assembly.attach_host(name, latency=0.001, bandwidth=1e8)
        host.bootstrap()
        hosts[name] = host
    network.compute_routes()
    return SimpleNamespace(
        rng=rng,
        network=network,
        anchor=anchor,
        rpki=rpki,
        as_a=as_a,
        as_b=as_b,
        hosts=hosts,
        config=config,
    )


@pytest.fixture()
def world():
    return build_world()


@pytest.fixture()
def world_with_nonces():
    return build_world(config=ApnaConfig(replay_protection=True))
