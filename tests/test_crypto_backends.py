"""Cross-backend differential suite: pure and openssl must agree byte-for-byte.

Every primitive behind the :mod:`repro.crypto.backend` seam is driven
with the same seeded-random vectors through both providers; any
divergence (output bytes, acceptance/rejection behaviour) is a bug in
one of them.  This is what lets the OpenSSL fast path replace the
from-scratch code on the hot paths without changing semantics.
"""

import random

import pytest

from repro.crypto import backend as crypto_backend
from repro.crypto.aes import AES
from repro.crypto.cmac import Cmac
from repro.crypto.gcm import AesGcm
from repro.crypto.modes import cbc_decrypt, cbc_encrypt, cbc_mac, ctr_keystream, ctr_xcrypt

pytestmark = pytest.mark.skipif(
    "openssl" not in crypto_backend.available_backends(),
    reason="the 'cryptography' package is not installed",
)


def _providers():
    return crypto_backend.get_backend("pure"), crypto_backend.get_backend("openssl")


def test_registry_exposes_both_backends():
    names = crypto_backend.available_backends()
    assert "pure" in names and "openssl" in names
    assert crypto_backend.active_backend().name in names
    with pytest.raises(ValueError):
        crypto_backend.get_backend("no-such-backend")


def test_use_backend_round_trips():
    active = crypto_backend.active_backend()
    other = "pure" if active.name == "openssl" else "openssl"
    with crypto_backend.use_backend(other) as provider:
        assert crypto_backend.active_backend() is provider
        assert provider.name == other
    assert crypto_backend.active_backend() is active


def test_provider_layer_validation_parity():
    """Rejection behaviour must match even when providers are used
    directly (benchmarks do), not just through the facades."""
    pure, ossl = _providers()
    for provider in (pure, ossl):
        mac = provider.new_cmac(bytes(16))
        for bad_length in (0, 17):
            with pytest.raises(ValueError):
                mac.tag(b"x", bad_length)
        for bad_tag_size in (3, 17):
            with pytest.raises(ValueError):
                provider.new_gcm(bytes(16), bad_tag_size)


def test_register_backend_refreshes_active_instance():
    original_cls = crypto_backend._PROVIDER_CLASSES["pure"]

    class MarkedPure(original_cls):
        marked = True

    with crypto_backend.use_backend("pure"):
        try:
            crypto_backend.register_backend("pure", MarkedPure)
            assert getattr(crypto_backend.active_backend(), "marked", False)
        finally:
            crypto_backend.register_backend("pure", original_cls)
        assert not getattr(crypto_backend.active_backend(), "marked", False)


@pytest.mark.parametrize("key_size", [16, 24, 32])
def test_aes_block_agrees(key_size):
    pure, ossl = _providers()
    rnd = random.Random(0xAE5_000 + key_size)
    for _ in range(25):
        key = rnd.randbytes(key_size)
        block = rnd.randbytes(16)
        a, b = AES(key, backend=pure), AES(key, backend=ossl)
        ct = a.encrypt_block(block)
        assert ct == b.encrypt_block(block)
        assert a.decrypt_block(ct) == b.decrypt_block(ct) == block


def test_ctr_agrees_including_counter_wrap():
    pure, ossl = _providers()
    rnd = random.Random(0xC7C7)
    lengths = [0, 1, 15, 16, 17, 64, 100, 1000]
    for length in lengths:
        key = rnd.randbytes(16)
        counter = rnd.randbytes(16)
        data = rnd.randbytes(length)
        a, b = AES(key, backend=pure), AES(key, backend=ossl)
        assert ctr_xcrypt(a, counter, data) == ctr_xcrypt(b, counter, data)
        assert ctr_keystream(a, counter, length) == ctr_keystream(b, counter, length)
    # The 128-bit counter must wrap identically in both backends — with a
    # payload large enough (>128 B) to drive the openssl backend's native
    # EVP CTR path, not just its short-payload ECB keystream path.
    key = rnd.randbytes(16)
    a, b = AES(key, backend=pure), AES(key, backend=ossl)
    near_wrap = b"\xff" * 16
    for size in (64, 256):
        assert ctr_xcrypt(a, near_wrap, bytes(size)) == ctr_xcrypt(b, near_wrap, bytes(size))


def test_cbc_and_cbc_mac_agree():
    pure, ossl = _providers()
    rnd = random.Random(0xCBC)
    for blocks in (1, 2, 5):
        key = rnd.randbytes(16)
        iv = rnd.randbytes(16)
        plaintext = rnd.randbytes(16 * blocks)
        a, b = AES(key, backend=pure), AES(key, backend=ossl)
        ct = cbc_encrypt(a, iv, plaintext)
        assert ct == cbc_encrypt(b, iv, plaintext)
        assert cbc_decrypt(a, iv, ct) == cbc_decrypt(b, iv, ct) == plaintext
        assert cbc_mac(a, plaintext) == cbc_mac(b, plaintext)


def test_cmac_agrees_across_lengths_and_truncations():
    pure, ossl = _providers()
    rnd = random.Random(0xC3AC)
    for length in [0, 1, 15, 16, 17, 40, 64, 100, 1518]:
        key = rnd.randbytes(16)
        message = rnd.randbytes(length)
        a, b = Cmac(key, backend=pure), Cmac(key, backend=ossl)
        for tag_len in (4, 8, 16):
            assert a.tag(message, tag_len) == b.tag(message, tag_len)
        assert b.verify(message, a.tag(message, 8))
        assert a.verify(message, b.tag(message, 8))


@pytest.mark.parametrize("tag_size", [4, 12, 16])
def test_gcm_seal_agrees(tag_size):
    pure, ossl = _providers()
    rnd = random.Random(0x6C3 + tag_size)
    cases = [
        (rnd.randbytes(12), rnd.randbytes(64), rnd.randbytes(20)),
        (rnd.randbytes(12), b"", rnd.randbytes(16)),  # empty plaintext
        (rnd.randbytes(12), rnd.randbytes(33), b""),  # empty AAD
        (rnd.randbytes(12), b"", b""),  # both empty
        (rnd.randbytes(8), rnd.randbytes(48), rnd.randbytes(8)),  # 64-bit nonce
        (rnd.randbytes(16), rnd.randbytes(48), rnd.randbytes(8)),  # 128-bit nonce
        (rnd.randbytes(4), rnd.randbytes(48), rnd.randbytes(8)),  # short nonce
    ]
    for nonce, plaintext, aad in cases:
        key = rnd.randbytes(16)
        a = AesGcm(key, tag_size, backend=pure)
        b = AesGcm(key, tag_size, backend=ossl)
        sealed = a.seal(nonce, plaintext, aad)
        assert sealed == b.seal(nonce, plaintext, aad)
        assert a.open(nonce, sealed, aad) == b.open(nonce, sealed, aad) == plaintext


def test_gcm_tamper_rejected_by_both():
    pure, ossl = _providers()
    rnd = random.Random(0x6C37)
    key = rnd.randbytes(16)
    nonce = rnd.randbytes(12)
    aad = rnd.randbytes(10)
    a = AesGcm(key, backend=pure)
    b = AesGcm(key, backend=ossl)
    sealed = a.seal(nonce, rnd.randbytes(40), aad)
    for position in (0, len(sealed) // 2, len(sealed) - 1):
        tampered = bytearray(sealed)
        tampered[position] ^= 0x01
        for gcm in (a, b):
            with pytest.raises(ValueError):
                gcm.open(nonce, bytes(tampered), aad)
    # Wrong AAD must also fail on both.
    for gcm in (a, b):
        with pytest.raises(ValueError):
            gcm.open(nonce, sealed, aad + b"x")


def test_ed25519_agrees():
    pure, ossl = _providers()
    rnd = random.Random(0xED2_5519)
    for _ in range(8):
        secret = rnd.randbytes(32)
        message = rnd.randbytes(rnd.randrange(0, 200))
        pub_a = pure.ed25519_public_key(secret)
        pub_b = ossl.ed25519_public_key(secret)
        assert pub_a == pub_b
        sig_a = pure.ed25519_sign(secret, message)
        sig_b = ossl.ed25519_sign(secret, message)
        assert sig_a == sig_b  # Ed25519 signing is deterministic
        # Cross-verification: each backend accepts the other's signature.
        assert pure.ed25519_verify(pub_b, message, sig_b)
        assert ossl.ed25519_verify(pub_a, message, sig_a)
        # Corruption is rejected by both.
        bad = bytearray(sig_a)
        bad[rnd.randrange(64)] ^= 0xFF
        assert not pure.ed25519_verify(pub_a, message, bytes(bad))
        assert not ossl.ed25519_verify(pub_a, message, bytes(bad))
        assert not pure.ed25519_verify(pub_a, message + b"!", sig_a)
        assert not ossl.ed25519_verify(pub_a, message + b"!", sig_a)


def test_ed25519_non_canonical_encodings_rejected_by_both():
    """OpenSSL reduces non-canonical point encodings instead of rejecting
    them; the backend must pre-screen so acceptance matches pure exactly."""
    from repro.crypto.ed25519 import L, P, _BASE, _compress, _scalar_mult

    pure, ossl = _providers()
    message = b"canonicality"
    # Identity point encoded non-canonically: y = 1 + p.
    bad_pub = (1 + P).to_bytes(32, "little")
    sig = _compress(_scalar_mult(5, _BASE)) + (5).to_bytes(32, "little")
    assert not pure.ed25519_verify(bad_pub, message, sig)
    assert not ossl.ed25519_verify(bad_pub, message, sig)
    # Non-canonical R inside the signature.
    secret = bytes(range(32))
    good_pub = pure.ed25519_public_key(secret)
    bad_sig = bad_pub + (5).to_bytes(32, "little")
    assert not pure.ed25519_verify(good_pub, message, bad_sig)
    assert not ossl.ed25519_verify(good_pub, message, bad_sig)
    # Sign bit set on x = 0 (identity with a claimed odd x).
    zero_x_bad = (1 | (1 << 255)).to_bytes(32, "little")
    assert not pure.ed25519_verify(zero_x_bad, message, sig)
    assert not ossl.ed25519_verify(zero_x_bad, message, sig)
    # s >= L is non-canonical on both.
    fat_s = good_pub + L.to_bytes(32, "little")
    assert not pure.ed25519_verify(good_pub, message, fat_s)
    assert not ossl.ed25519_verify(good_pub, message, fat_s)


def test_x25519_agrees():
    pure, ossl = _providers()
    rnd = random.Random(0x25519)
    for _ in range(8):
        priv_a = rnd.randbytes(32)
        priv_b = rnd.randbytes(32)
        pub_a_pure = pure.x25519_public_key(priv_a)
        pub_a_ossl = ossl.x25519_public_key(priv_a)
        assert pub_a_pure == pub_a_ossl
        pub_b = pure.x25519_public_key(priv_b)
        shared_pure = pure.x25519_shared_secret(priv_a, pub_b)
        shared_ossl = ossl.x25519_shared_secret(priv_a, pub_b)
        assert shared_pure == shared_ossl
        # DH symmetry through the other backend.
        assert ossl.x25519_shared_secret(priv_b, pub_a_pure) == shared_pure


def test_x25519_low_order_point_rejected_by_both():
    pure, ossl = _providers()
    low_order = bytes(32)  # u = 0 is a low-order point
    for provider in (pure, ossl):
        with pytest.raises(ValueError):
            provider.x25519_shared_secret(b"\x02" * 32, low_order)


def test_hmac_and_hkdf_agree():
    from repro.crypto.kdf import derive_subkey, hkdf

    pure, ossl = _providers()
    rnd = random.Random(0x4DF)
    for _ in range(10):
        key = rnd.randbytes(rnd.choice([16, 32, 65, 100]))
        message = rnd.randbytes(rnd.randrange(0, 300))
        assert pure.hmac_sha256(key, message) == ossl.hmac_sha256(key, message)
    ikm = rnd.randbytes(32)
    with crypto_backend.use_backend("pure"):
        via_pure = hkdf(ikm, salt=b"s", info=b"i", length=80)
        subkey_pure = derive_subkey(ikm, "etm-enc")
    with crypto_backend.use_backend("openssl"):
        assert hkdf(ikm, salt=b"s", info=b"i", length=80) == via_pure
        assert derive_subkey(ikm, "etm-enc") == subkey_pure


def test_aead_schemes_interoperate_across_backends():
    from repro.crypto.aead import new_aead

    pure, ossl = _providers()
    rnd = random.Random(0xAEAD)
    key = rnd.randbytes(32)
    nonce = rnd.randbytes(12)
    plaintext = rnd.randbytes(256)
    aad = rnd.randbytes(12)
    for scheme in ("etm", "gcm"):
        a = new_aead(key, scheme, backend=pure)
        b = new_aead(key, scheme, backend=ossl)
        sealed = a.seal(nonce, plaintext, aad)
        assert sealed == b.seal(nonce, plaintext, aad)
        assert b.open(nonce, sealed, aad) == plaintext
        assert a.open(nonce, b.seal(nonce, plaintext, aad), aad) == plaintext
