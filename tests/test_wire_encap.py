"""Tests for IPv4, GRE encapsulation, transport shim and ICMP formats."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wire import (
    ENCAP_OVERHEAD,
    ETHERTYPE_APNA,
    GreHeader,
    IcmpMessage,
    Ipv4Header,
    ParseError,
    TransportHeader,
    build_segment,
    checksum,
    decapsulate,
    encapsulate,
    int_to_ip,
    ip_to_int,
    split_segment,
)
from repro.wire import icmp
from repro.wire.errors import FieldError
from repro.wire.ipv4 import PROTO_GRE


class TestIpv4:
    def test_roundtrip(self):
        header = Ipv4Header(
            src=ip_to_int("10.0.0.1"),
            dst=ip_to_int("192.168.1.200"),
            protocol=PROTO_GRE,
            total_length=100,
            ttl=17,
        )
        assert Ipv4Header.parse(header.pack()) == header

    def test_checksum_verifies(self):
        header = Ipv4Header(src=1, dst=2, protocol=6).pack()
        assert checksum(header) == 0
        corrupted = bytearray(header)
        corrupted[8] ^= 0xFF
        with pytest.raises(ParseError):
            Ipv4Header.parse(bytes(corrupted))

    def test_rfc1071_known_checksum(self):
        # Classic example from RFC 1071 materials.
        data = bytes.fromhex("4500003c1c4640004006b1e6ac100a63ac100a0c")
        assert checksum(data) == 0

    def test_rejects_non_ipv4(self):
        wire = bytearray(Ipv4Header(src=1, dst=2, protocol=6).pack())
        wire[0] = (6 << 4) | 5
        with pytest.raises(ParseError):
            Ipv4Header.parse(bytes(wire))

    def test_ttl_decrement(self):
        header = Ipv4Header(src=1, dst=2, protocol=6, ttl=2)
        assert header.decrement_ttl().ttl == 1
        with pytest.raises(ParseError):
            header.decrement_ttl().decrement_ttl()

    def test_address_conversion(self):
        assert ip_to_int("1.2.3.4") == 0x01020304
        assert int_to_ip(0x01020304) == "1.2.3.4"
        with pytest.raises(FieldError):
            ip_to_int("1.2.3")
        with pytest.raises(FieldError):
            ip_to_int("1.2.3.256")
        with pytest.raises(FieldError):
            int_to_ip(-1)

    @settings(max_examples=30, deadline=None)
    @given(value=st.integers(min_value=0, max_value=2**32 - 1))
    def test_address_roundtrip(self, value):
        assert ip_to_int(int_to_ip(value)) == value


class TestGre:
    def test_header_roundtrip(self):
        assert GreHeader.parse(GreHeader().pack()) == GreHeader(ETHERTYPE_APNA)

    def test_rejects_nonzero_version(self):
        with pytest.raises(ParseError):
            GreHeader.parse(b"\x00\x01\x88\xb7")

    def test_rejects_optional_fields(self):
        with pytest.raises(ParseError):
            GreHeader.parse(b"\x80\x00\x88\xb7")  # checksum-present bit

    def test_encapsulation_roundtrip(self):
        apna = b"\x42" * 60
        wire = encapsulate(apna, ip_to_int("10.0.0.1"), ip_to_int("10.0.0.2"))
        outer, inner = decapsulate(wire)
        assert inner == apna
        assert outer.src == ip_to_int("10.0.0.1")
        assert outer.protocol == PROTO_GRE
        assert len(wire) == ENCAP_OVERHEAD + len(apna)

    def test_encap_overhead_is_24_bytes(self):
        # IPv4 (20) + GRE (4): the fixed deployment tax discussed in VII-D.
        assert ENCAP_OVERHEAD == 24

    def test_decapsulate_rejects_non_gre(self):
        ip = Ipv4Header(src=1, dst=2, protocol=6, total_length=20)
        with pytest.raises(ParseError):
            decapsulate(ip.pack())

    def test_decapsulate_rejects_foreign_ethertype(self):
        ip = Ipv4Header(src=1, dst=2, protocol=PROTO_GRE, total_length=24)
        wire = ip.pack() + GreHeader(protocol_type=0x0800).pack()
        with pytest.raises(ParseError):
            decapsulate(wire)

    def test_decapsulate_rejects_truncation(self):
        wire = encapsulate(b"x" * 40, 1, 2)
        with pytest.raises(ParseError):
            decapsulate(wire[:-10])


class TestTransport:
    def test_segment_roundtrip(self):
        header = TransportHeader(src_port=1234, dst_port=80, seq=42)
        segment = build_segment(header, b"GET /")
        parsed, data = split_segment(segment)
        assert data == b"GET /"
        assert parsed.src_port == 1234
        assert parsed.dst_port == 80
        assert parsed.length == 5

    def test_split_rejects_truncated(self):
        segment = build_segment(TransportHeader(1, 2), b"abcdef")
        with pytest.raises(ParseError):
            split_segment(segment[:-1])

    def test_field_bounds(self):
        with pytest.raises(FieldError):
            TransportHeader(src_port=70000, dst_port=1)
        with pytest.raises(FieldError):
            TransportHeader(src_port=1, dst_port=1, seq=2**32)
        with pytest.raises(FieldError):
            TransportHeader(src_port=1, dst_port=1, proto=300)

    @settings(max_examples=30, deadline=None)
    @given(
        src=st.integers(min_value=0, max_value=65535),
        dst=st.integers(min_value=0, max_value=65535),
        seq=st.integers(min_value=0, max_value=2**32 - 1),
        data=st.binary(max_size=200),
    )
    def test_property_roundtrip(self, src, dst, seq, data):
        segment = build_segment(TransportHeader(src, dst, seq), data)
        parsed, recovered = split_segment(segment)
        assert (parsed.src_port, parsed.dst_port, parsed.seq) == (src, dst, seq)
        assert recovered == data


class TestIcmp:
    def test_echo_roundtrip(self):
        message = IcmpMessage(icmp.ECHO_REQUEST, identifier=7, sequence=3, payload=b"ping")
        assert IcmpMessage.parse(message.pack()) == message

    def test_reply_mirrors_identifier(self):
        request = IcmpMessage(icmp.ECHO_REQUEST, identifier=9, sequence=5, payload=b"data")
        reply = request.reply()
        assert reply.type == icmp.ECHO_REPLY
        assert (reply.identifier, reply.sequence) == (9, 5)
        assert reply.payload == b"data"

    def test_reply_only_for_requests(self):
        with pytest.raises(FieldError):
            IcmpMessage(icmp.ECHO_REPLY).reply()

    def test_parse_rejects_short(self):
        with pytest.raises(ParseError):
            IcmpMessage.parse(bytes(7))

    def test_type_names(self):
        assert IcmpMessage(icmp.ECHO_REQUEST).type_name == "echo-request"
        assert IcmpMessage(77).type_name == "type-77"

    def test_error_payload_carries_offending_packet(self):
        offending = b"\x01" * 64
        message = IcmpMessage(
            icmp.DEST_UNREACHABLE, code=icmp.CODE_EPHID_EXPIRED, payload=offending[:32]
        )
        parsed = IcmpMessage.parse(message.pack())
        assert parsed.code == icmp.CODE_EPHID_EXPIRED
        assert parsed.payload == offending[:32]
