"""Ed25519 tests pinned to the RFC 8032 Section 7.1 vectors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import ed25519

RFC8032_VECTORS = [
    # (secret, public, message, signature)
    (
        "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
        "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a",
        "",
        "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
        "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b",
    ),
    (
        "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
        "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c",
        "72",
        "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
        "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00",
    ),
    (
        "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
        "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025",
        "af82",
        "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac"
        "18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a",
    ),
]


@pytest.mark.parametrize("secret,public,message,signature", RFC8032_VECTORS)
def test_rfc8032_public_key(secret, public, message, signature):
    assert ed25519.public_key(bytes.fromhex(secret)).hex() == public


@pytest.mark.parametrize("secret,public,message,signature", RFC8032_VECTORS)
def test_rfc8032_sign(secret, public, message, signature):
    sig = ed25519.sign(bytes.fromhex(secret), bytes.fromhex(message))
    assert sig.hex() == signature


@pytest.mark.parametrize("secret,public,message,signature", RFC8032_VECTORS)
def test_rfc8032_verify(secret, public, message, signature):
    assert ed25519.verify(
        bytes.fromhex(public), bytes.fromhex(message), bytes.fromhex(signature)
    )


def test_verify_rejects_wrong_message():
    secret, public, _, signature = RFC8032_VECTORS[1]
    assert not ed25519.verify(
        bytes.fromhex(public), b"different", bytes.fromhex(signature)
    )


def test_verify_rejects_tampered_signature():
    secret, public, message, signature = RFC8032_VECTORS[2]
    sig = bytearray(bytes.fromhex(signature))
    sig[0] ^= 1
    assert not ed25519.verify(bytes.fromhex(public), bytes.fromhex(message), bytes(sig))


def test_verify_rejects_wrong_key():
    _, _, message, signature = RFC8032_VECTORS[2]
    other_public = RFC8032_VECTORS[0][1]
    assert not ed25519.verify(
        bytes.fromhex(other_public), bytes.fromhex(message), bytes.fromhex(signature)
    )


def test_verify_rejects_malformed_inputs():
    assert not ed25519.verify(bytes(31), b"m", bytes(64))
    assert not ed25519.verify(bytes(32), b"m", bytes(63))
    # s >= L must be rejected (malleability guard).
    from repro.crypto.ed25519 import L

    sig = bytes(32) + L.to_bytes(32, "little")
    assert not ed25519.verify(bytes(32), b"m", sig)


def test_sign_requires_32_byte_secret():
    with pytest.raises(ValueError):
        ed25519.sign(bytes(16), b"m")
    with pytest.raises(ValueError):
        ed25519.public_key(bytes(16))


@settings(max_examples=8, deadline=None)
@given(secret=st.binary(min_size=32, max_size=32), message=st.binary(max_size=100))
def test_sign_verify_roundtrip(secret, message):
    public = ed25519.public_key(secret)
    signature = ed25519.sign(secret, message)
    assert ed25519.verify(public, message, signature)
    assert not ed25519.verify(public, message + b"x", signature)
