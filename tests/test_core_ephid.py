"""Tests for the Fig. 6 EphID construction."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ephid import (
    CIPHERTEXT_SIZE,
    EPHID_SIZE,
    IV_SIZE,
    TAG_SIZE,
    EphIdCodec,
    EphIdInfo,
    IvAllocator,
)
from repro.core.errors import EphIdError
from repro.crypto.rng import DeterministicRng

ENC_KEY = bytes(range(16))
MAC_KEY = bytes(range(16, 32))


@pytest.fixture()
def codec():
    return EphIdCodec(ENC_KEY, MAC_KEY)


def test_ephid_is_16_bytes(codec):
    # Fig. 6: 8 B ciphertext + 4 B IV + 4 B tag = 16 B, one AES block.
    assert CIPHERTEXT_SIZE + IV_SIZE + TAG_SIZE == EPHID_SIZE == 16
    assert len(codec.seal(hid=1, exp_time=2, iv=3)) == 16


def test_seal_open_roundtrip(codec):
    ephid = codec.seal(hid=0xDEADBEEF, exp_time=1_700_000_000, iv=42)
    info = codec.open(ephid)
    assert info == EphIdInfo(hid=0xDEADBEEF, exp_time=1_700_000_000)


def test_stateless_decode_needs_no_table(codec):
    # The defining property of the construction (Section IV-C): any number
    # of EphIDs decode with O(1) state.
    ephids = [codec.seal(hid=h, exp_time=h * 2, iv=h) for h in range(200)]
    for h, ephid in enumerate(ephids):
        assert codec.open(ephid).hid == h


def test_same_hid_distinct_ivs_give_unlinkable_tokens(codec):
    a = codec.seal(hid=7, exp_time=100, iv=1)
    b = codec.seal(hid=7, exp_time=100, iv=2)
    assert a != b
    # Both decode to the same host.
    assert codec.open(a).hid == codec.open(b).hid == 7


def test_iv_is_embedded_in_clear(codec):
    ephid = codec.seal(hid=1, exp_time=2, iv=0x01020304)
    (iv,) = struct.unpack_from(">I", ephid, CIPHERTEXT_SIZE)
    assert iv == 0x01020304


def test_tamper_any_byte_rejected(codec):
    ephid = codec.seal(hid=55, exp_time=1000, iv=77)
    for position in range(EPHID_SIZE):
        tampered = bytearray(ephid)
        tampered[position] ^= 0x01
        with pytest.raises(EphIdError):
            codec.open(bytes(tampered))


def test_forgery_without_keys_fails(codec):
    # An adversary cannot mint EphIDs (Section VI-A, Unauthorized EphID
    # Generation): random tokens fail the MAC check.
    rng = DeterministicRng(0)
    for _ in range(500):
        assert not codec.is_valid(rng.read(EPHID_SIZE))


def test_other_as_cannot_decode(codec):
    # EphIDs are "meaningful only to the issuing AS" (Section III-B).
    other = EphIdCodec(bytes(range(32, 48)), bytes(range(48, 64)))
    ephid = codec.seal(hid=9, exp_time=50, iv=1)
    with pytest.raises(EphIdError):
        other.open(ephid)


def test_wrong_length_rejected(codec):
    with pytest.raises(EphIdError):
        codec.open(bytes(15))
    with pytest.raises(EphIdError):
        codec.open(bytes(17))


def test_field_ranges(codec):
    with pytest.raises(EphIdError):
        codec.seal(hid=2**32, exp_time=0, iv=0)
    with pytest.raises(EphIdError):
        codec.seal(hid=0, exp_time=2**32, iv=0)
    with pytest.raises(EphIdError):
        codec.seal(hid=0, exp_time=0, iv=2**32)
    with pytest.raises(EphIdError):
        codec.seal(hid=-1, exp_time=0, iv=0)


def test_identical_keys_rejected():
    with pytest.raises(ValueError):
        EphIdCodec(ENC_KEY, ENC_KEY)


def test_expired_helper():
    info = EphIdInfo(hid=1, exp_time=100)
    assert not info.expired(now=99)
    assert not info.expired(now=100)
    assert info.expired(now=101)


@settings(max_examples=60, deadline=None)
@given(
    hid=st.integers(min_value=0, max_value=2**32 - 1),
    exp_time=st.integers(min_value=0, max_value=2**32 - 1),
    iv=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_property_roundtrip(hid, exp_time, iv):
    codec = EphIdCodec(ENC_KEY, MAC_KEY)
    info = codec.open(codec.seal(hid=hid, exp_time=exp_time, iv=iv))
    assert (info.hid, info.exp_time) == (hid, exp_time)


@settings(max_examples=20, deadline=None)
@given(
    hid=st.integers(min_value=0, max_value=2**32 - 1),
    exp_time=st.integers(min_value=0, max_value=2**32 - 1),
    iv1=st.integers(min_value=0, max_value=2**32 - 1),
    iv2=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_distinct_ivs_never_collide(hid, exp_time, iv1, iv2):
    codec = EphIdCodec(ENC_KEY, MAC_KEY)
    a = codec.seal(hid=hid, exp_time=exp_time, iv=iv1)
    b = codec.seal(hid=hid, exp_time=exp_time, iv=iv2)
    assert (a == b) == (iv1 == iv2)


class TestIvAllocator:
    def test_sequential_unique(self):
        alloc = IvAllocator(start=10)
        ivs = [alloc.next_iv() for _ in range(100)]
        assert len(set(ivs)) == 100
        assert alloc.issued == 100

    def test_wraps_modulo_32_bits(self):
        alloc = IvAllocator(start=2**32 - 1)
        assert alloc.next_iv() == 2**32 - 1
        assert alloc.next_iv() == 0

    def test_random_start_from_rng(self):
        a = IvAllocator(DeterministicRng(1))
        b = IvAllocator(DeterministicRng(1))
        assert a.next_iv() == b.next_iv()

    def test_exhaustion_guard(self):
        alloc = IvAllocator(start=0)
        alloc._remaining = 1
        alloc.next_iv()
        with pytest.raises(EphIdError):
            alloc.next_iv()
