"""CTR / CBC / CBC-MAC tests pinned to NIST SP 800-38A vectors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES
from repro.crypto.modes import (
    cbc_decrypt,
    cbc_encrypt,
    cbc_mac,
    ctr_keystream,
    ctr_xcrypt,
)

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
SP800_38A_PLAINTEXT = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710"
)


def test_ctr_sp800_38a():
    counter = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
    expected = bytes.fromhex(
        "874d6191b620e3261bef6864990db6ce"
        "9806f66b7970fdff8617187bb9fffdff"
        "5ae4df3edbd5d35e5b4f09020db03eab"
        "1e031dda2fbe03d1792170a0f3009cee"
    )
    cipher = AES(KEY)
    assert ctr_xcrypt(cipher, counter, SP800_38A_PLAINTEXT) == expected
    # CTR is an involution.
    assert ctr_xcrypt(cipher, counter, expected) == SP800_38A_PLAINTEXT


def test_ctr_counter_wraps_across_block_boundary():
    cipher = AES(KEY)
    near_max = (2**128 - 1).to_bytes(16, "big")
    stream = ctr_keystream(cipher, near_max, 32)
    wrapped = ctr_keystream(cipher, bytes(16), 16)
    assert stream[16:] == wrapped


def test_ctr_partial_block():
    cipher = AES(KEY)
    counter = bytes(16)
    full = ctr_keystream(cipher, counter, 16)
    assert ctr_keystream(cipher, counter, 5) == full[:5]


def test_cbc_sp800_38a():
    iv = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    expected = bytes.fromhex(
        "7649abac8119b246cee98e9b12e9197d"
        "5086cb9b507219ee95db113a917678b2"
        "73bed6b8e3c1743b7116e69e22229516"
        "3ff1caa1681fac09120eca307586e1a7"
    )
    cipher = AES(KEY)
    assert cbc_encrypt(cipher, iv, SP800_38A_PLAINTEXT) == expected
    assert cbc_decrypt(cipher, iv, expected) == SP800_38A_PLAINTEXT


def test_cbc_rejects_unaligned():
    cipher = AES(KEY)
    with pytest.raises(ValueError):
        cbc_encrypt(cipher, bytes(16), b"not a multiple")
    with pytest.raises(ValueError):
        cbc_decrypt(cipher, bytes(16), b"not a multiple")
    with pytest.raises(ValueError):
        cbc_encrypt(cipher, bytes(8), bytes(16))


def test_cbc_mac_single_block_equals_encryption():
    # For a single block, CBC-MAC(m) == AES(m) since the initial state is 0.
    cipher = AES(KEY)
    block = bytes(range(16))
    assert cbc_mac(cipher, block) == cipher.encrypt_block(block)


def test_cbc_mac_fixed_length_guard():
    cipher = AES(KEY)
    cbc_mac(cipher, bytes(16), expected_length=16)
    with pytest.raises(ValueError):
        cbc_mac(cipher, bytes(32), expected_length=16)


def test_cbc_mac_rejects_empty_and_unaligned():
    cipher = AES(KEY)
    with pytest.raises(ValueError):
        cbc_mac(cipher, b"")
    with pytest.raises(ValueError):
        cbc_mac(cipher, bytes(15))


def test_cbc_mac_is_deterministic_and_key_dependent():
    message = bytes(32)
    assert cbc_mac(AES(KEY), message) == cbc_mac(AES(KEY), message)
    assert cbc_mac(AES(KEY), message) != cbc_mac(AES(bytes(16)), message)


@settings(max_examples=40, deadline=None)
@given(
    key=st.binary(min_size=16, max_size=16),
    counter=st.binary(min_size=16, max_size=16),
    data=st.binary(min_size=0, max_size=200),
)
def test_ctr_roundtrip(key, counter, data):
    cipher = AES(key)
    assert ctr_xcrypt(cipher, counter, ctr_xcrypt(cipher, counter, data)) == data


@settings(max_examples=30, deadline=None)
@given(
    key=st.binary(min_size=16, max_size=16),
    iv=st.binary(min_size=16, max_size=16),
    blocks=st.integers(min_value=1, max_value=6),
    data=st.data(),
)
def test_cbc_roundtrip(key, iv, blocks, data):
    plaintext = data.draw(st.binary(min_size=16 * blocks, max_size=16 * blocks))
    cipher = AES(key)
    assert cbc_decrypt(cipher, iv, cbc_encrypt(cipher, iv, plaintext)) == plaintext
