"""AES block cipher tests pinned to FIPS-197 and NIST known-answer vectors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES, INV_SBOX, SBOX


FIPS_197_VECTORS = [
    # (key, plaintext, ciphertext) from FIPS-197 Appendix C.
    (
        "000102030405060708090a0b0c0d0e0f",
        "00112233445566778899aabbccddeeff",
        "69c4e0d86a7b0430d8cdb78070b4c55a",
    ),
    (
        "000102030405060708090a0b0c0d0e0f1011121314151617",
        "00112233445566778899aabbccddeeff",
        "dda97ca4864cdfe06eaf70a0ec0d7191",
    ),
    (
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        "00112233445566778899aabbccddeeff",
        "8ea2b7ca516745bfeafc49904b496089",
    ),
    # FIPS-197 Appendix B worked example.
    (
        "2b7e151628aed2a6abf7158809cf4f3c",
        "3243f6a8885a308d313198a2e0370734",
        "3925841d02dc09fbdc118597196a0b32",
    ),
]


@pytest.mark.parametrize("key,plaintext,ciphertext", FIPS_197_VECTORS)
def test_fips197_encrypt(key, plaintext, ciphertext):
    cipher = AES(bytes.fromhex(key))
    assert cipher.encrypt_block(bytes.fromhex(plaintext)).hex() == ciphertext


@pytest.mark.parametrize("key,plaintext,ciphertext", FIPS_197_VECTORS)
def test_fips197_decrypt(key, plaintext, ciphertext):
    cipher = AES(bytes.fromhex(key))
    assert cipher.decrypt_block(bytes.fromhex(ciphertext)).hex() == plaintext


def test_sbox_known_entries():
    assert SBOX[0x00] == 0x63
    assert SBOX[0x01] == 0x7C
    assert SBOX[0x53] == 0xED
    assert SBOX[0xFF] == 0x16


def test_sbox_is_a_permutation():
    assert sorted(SBOX) == list(range(256))
    assert all(INV_SBOX[SBOX[i]] == i for i in range(256))


def test_rejects_bad_key_length():
    with pytest.raises(ValueError):
        AES(b"short")


def test_rejects_bad_block_length():
    cipher = AES(bytes(16))
    with pytest.raises(ValueError):
        cipher.encrypt_block(b"too short")
    with pytest.raises(ValueError):
        cipher.decrypt_block(bytes(17))


@settings(max_examples=50, deadline=None)
@given(
    key=st.binary(min_size=16, max_size=16)
    | st.binary(min_size=24, max_size=24)
    | st.binary(min_size=32, max_size=32),
    block=st.binary(min_size=16, max_size=16),
)
def test_encrypt_decrypt_roundtrip(key, block):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@settings(max_examples=20, deadline=None)
@given(key=st.binary(min_size=16, max_size=16), block=st.binary(min_size=16, max_size=16))
def test_encryption_is_not_identity(key, block):
    # A permutation can have fixed points in principle, but AES having one on
    # random input would be a 2^-128 event; this guards against a pass-through
    # implementation bug.
    cipher = AES(key)
    assert cipher.encrypt_block(block) != block or cipher.decrypt_block(block) != block
