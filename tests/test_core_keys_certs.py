"""Tests for key material, EphID certificates and the RPKI substrate."""

import pytest

from repro.core.certs import (
    AS_CERT_SIZE,
    EPHID_CERT_SIZE,
    FLAG_CONTROL,
    FLAG_RECEIVE_ONLY,
    AsCertificate,
    EphIdCertificate,
)
from repro.core.errors import CertError
from repro.core.keys import (
    AsKeyMaterial,
    AsSecret,
    EphIdKeyPair,
    ExchangeKeyPair,
    HostAsKeys,
    SigningKeyPair,
    as_host_dh,
    host_as_dh,
)
from repro.core.rpki import RpkiDirectory, TrustAnchor
from repro.crypto import ed25519
from repro.crypto.rng import DeterministicRng


@pytest.fixture()
def rng():
    return DeterministicRng(2024)


class TestKeys:
    def test_as_secret_subkeys_differ(self, rng):
        secret = AsSecret.generate(rng)
        assert len({secret.ephid_enc, secret.ephid_mac, secret.infra_mac}) == 3

    def test_as_secret_requires_16_bytes(self):
        with pytest.raises(ValueError):
            AsSecret(bytes(15))

    def test_host_as_dh_agreement(self, rng):
        as_keys = AsKeyMaterial.generate(rng)
        host = ExchangeKeyPair.generate(rng)
        host_view = host_as_dh(host, as_keys.exchange.public)
        as_view = as_host_dh(as_keys.exchange, host.public)
        assert host_view == as_view
        assert host_view.control != host_view.packet_mac

    def test_kha_differs_per_host(self, rng):
        as_keys = AsKeyMaterial.generate(rng)
        host1 = ExchangeKeyPair.generate(rng)
        host2 = ExchangeKeyPair.generate(rng)
        assert as_host_dh(as_keys.exchange, host1.public) != as_host_dh(
            as_keys.exchange, host2.public
        )

    def test_signing_pair_roundtrip(self, rng):
        pair = SigningKeyPair.generate(rng)
        signature = pair.sign(b"message")
        assert ed25519.verify(pair.public, b"message", signature)

    def test_ephid_keypair_dual_use(self, rng):
        pair = EphIdKeyPair.generate(rng)
        # DH public and signing public are distinct keys from one seed.
        dh_pub, sig_pub = pair.public_pair
        assert dh_pub != sig_pub
        # Deterministic from the seed.
        again = EphIdKeyPair.from_seed(pair.seed)
        assert again.public_pair == pair.public_pair

    def test_ephid_keypair_seed_length(self):
        with pytest.raises(ValueError):
            EphIdKeyPair.from_seed(bytes(31))

    def test_hostaskeys_deterministic(self):
        a = HostAsKeys.from_dh(bytes(32))
        b = HostAsKeys.from_dh(bytes(32))
        assert a == b


class TestEphIdCertificate:
    def make_cert(self, rng, signer=None, **overrides):
        signer = signer or SigningKeyPair.generate(rng)
        keys = EphIdKeyPair.generate(rng)
        fields = dict(
            ephid=rng.read(16),
            exp_time=1_000_000,
            dh_public=keys.exchange.public,
            sig_public=keys.signing.public,
            aid=65000,
            aa_ephid=rng.read(16),
            flags=0,
        )
        fields.update(overrides)
        return signer, EphIdCertificate.issue(signer, **fields)

    def test_issue_and_verify(self, rng):
        signer, cert = self.make_cert(rng)
        cert.verify(signer.public, now=999_999)

    def test_verify_rejects_wrong_signer(self, rng):
        _, cert = self.make_cert(rng)
        other = SigningKeyPair.generate(rng)
        with pytest.raises(CertError):
            cert.verify(other.public)

    def test_verify_rejects_expired(self, rng):
        signer, cert = self.make_cert(rng, exp_time=100)
        cert.verify(signer.public, now=100)
        with pytest.raises(CertError):
            cert.verify(signer.public, now=101)

    def test_pack_parse_roundtrip(self, rng):
        signer, cert = self.make_cert(rng, flags=FLAG_RECEIVE_ONLY)
        wire = cert.pack()
        assert len(wire) == EPHID_CERT_SIZE
        recovered = EphIdCertificate.parse(wire)
        assert recovered == cert
        recovered.verify(signer.public)

    def test_parse_rejects_short(self):
        with pytest.raises(CertError):
            EphIdCertificate.parse(bytes(10))

    def test_tampered_fields_fail_verification(self, rng):
        signer, cert = self.make_cert(rng)
        wire = bytearray(cert.pack())
        wire[16] ^= 0x01  # flip a bit in exp_time
        with pytest.raises(CertError):
            EphIdCertificate.parse(bytes(wire)).verify(signer.public)

    def test_receive_only_flag(self, rng):
        _, plain = self.make_cert(rng)
        _, ro = self.make_cert(rng, flags=FLAG_RECEIVE_ONLY)
        assert not plain.receive_only
        assert ro.receive_only
        assert FLAG_CONTROL != FLAG_RECEIVE_ONLY

    def test_field_validation(self, rng):
        signer = SigningKeyPair.generate(rng)
        with pytest.raises(CertError):
            EphIdCertificate(
                ephid=bytes(15),
                exp_time=0,
                dh_public=bytes(32),
                sig_public=bytes(32),
            )
        with pytest.raises(CertError):
            EphIdCertificate(
                ephid=bytes(16),
                exp_time=2**32,
                dh_public=bytes(32),
                sig_public=bytes(32),
            )


class TestRpki:
    def test_anchor_certify_and_lookup(self, rng):
        anchor = TrustAnchor(rng)
        as_keys = AsKeyMaterial.generate(rng)
        cert = anchor.certify(64512, as_keys)
        directory = RpkiDirectory(anchor.public_key, clock=lambda: 0.0)
        directory.publish(cert)
        assert directory.lookup(64512).signing_public == as_keys.signing.public
        assert directory.signing_key_of(64512) == as_keys.signing.public
        assert 64512 in directory
        assert len(directory) == 1

    def test_lookup_unknown_aid(self, rng):
        directory = RpkiDirectory(TrustAnchor(rng).public_key, clock=lambda: 0.0)
        with pytest.raises(CertError):
            directory.lookup(1)

    def test_publish_rejects_forged_cert(self, rng):
        anchor = TrustAnchor(rng)
        rogue_anchor = TrustAnchor(rng)
        as_keys = AsKeyMaterial.generate(rng)
        forged = rogue_anchor.certify(64512, as_keys)
        directory = RpkiDirectory(anchor.public_key, clock=lambda: 0.0)
        with pytest.raises(CertError):
            directory.publish(forged)

    def test_publish_rejects_key_swap(self, rng):
        anchor = TrustAnchor(rng)
        directory = RpkiDirectory(anchor.public_key, clock=lambda: 0.0)
        directory.publish(anchor.certify(64512, AsKeyMaterial.generate(rng)))
        with pytest.raises(CertError):
            directory.publish(anchor.certify(64512, AsKeyMaterial.generate(rng)))

    def test_expired_cert_rejected_at_lookup(self, rng):
        anchor = TrustAnchor(rng)
        now = [50.0]
        directory = RpkiDirectory(anchor.public_key, clock=lambda: now[0])
        directory.publish(anchor.certify(1, AsKeyMaterial.generate(rng), exp_time=100))
        directory.lookup(1)
        now[0] = 200.0
        with pytest.raises(CertError):
            directory.lookup(1)

    def test_as_cert_pack_parse(self, rng):
        anchor = TrustAnchor(rng)
        cert = anchor.certify(7, AsKeyMaterial.generate(rng), exp_time=123)
        wire = cert.pack()
        assert len(wire) == AS_CERT_SIZE
        assert AsCertificate.parse(wire) == cert
