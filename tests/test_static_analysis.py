"""Tier-1 driver + self-tests for :mod:`repro.analysis`.

Three layers:

1. **The tree is clean** — every registered rule over all of
   ``src/repro`` yields zero non-baselined findings, both in-process
   and through the real CLI (``python -m repro.analysis --format
   json``), which is what CI gates on.
2. **Every rule provably detects** — per-rule known-bad/known-good
   fixture pairs, the self-testing-detector pattern the original
   audits established: a rule that silently stops firing is itself a
   regression.
3. **The machinery round-trips** — inline ``# audit: allow(...)``
   suppressions and the findings baseline (write, reload, burn-down,
   stale-entry detection).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    DEFAULT_ROOT,
    RULES,
    Module,
    Project,
    load_baseline,
    run_analysis,
    write_baseline,
)

ROOT = Path(__file__).resolve().parent.parent

EXPECTED_RULES = {
    "ct-compare",
    "shard-routing-mod",
    "secret-hygiene",
    "determinism",
    "bounded-wait",
    "pickle-free-wire",
    "wire-protocol-completeness",
    "silent-except",
    "scenario-coverage",
}


def findings_of(rule_name: str, source: str, rel: str):
    """Raw findings of one rule over an in-memory snippet."""
    rule = RULES[rule_name]
    assert rule.applies_to(rel), f"{rel} must be in {rule_name}'s scope"
    return list(rule.check_module(Module.from_source(source, rel)))


# --------------------------------------------------------------------------
# 1. The tree is clean (tier-1 gate)


def test_all_rules_registered():
    assert EXPECTED_RULES <= set(RULES), sorted(RULES)
    assert len(RULES) >= 9


def test_source_tree_has_no_new_findings():
    report = run_analysis()
    assert not report.new, "new static-invariant violations:\n" + "\n".join(
        f.render() for f in report.new
    )
    # The baseline must not rot: every grandfathered entry still fires.
    assert not report.stale_baseline, (
        "baseline entries no longer fire — delete them:\n"
        + "\n".join(report.stale_baseline)
    )


def _cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return env


def test_cli_json_run_is_clean():
    """The CI entry point: the real CLI, JSON out, exit status 0."""
    result = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--format", "json"],
        capture_output=True,
        text=True,
        cwd=ROOT,
        env=_cli_env(),
    )
    assert result.returncode == 0, result.stdout + result.stderr
    payload = json.loads(result.stdout)
    assert payload["new"] == 0
    assert set(payload["rules"]) >= EXPECTED_RULES
    assert payload["checked_files"] > 100
    assert all(item["baselined"] for item in payload["findings"])


def test_console_entry_point_declared():
    setup = (ROOT / "setup.py").read_text()
    assert "repro-analyze" in setup and "repro.analysis.cli:main" in setup


def test_cli_rejects_unknown_rule():
    result = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--rule", "no-such-rule"],
        capture_output=True,
        text=True,
        cwd=ROOT,
        env=_cli_env(),
    )
    assert result.returncode == 2
    assert "unknown rule" in result.stderr


# --------------------------------------------------------------------------
# 2. Per-rule known-bad / known-good fixtures


def test_ct_compare_detects_and_passes():
    bad = "def check(tag, presented):\n    return tag == presented\n"
    assert findings_of("ct-compare", bad, "crypto/fixture.py")
    good = (
        "from .util import ct_eq\n"
        "def check(tag, presented):\n"
        "    if len(tag) != 4:\n"  # length compares are fine
        "        return False\n"
        "    return ct_eq(tag, presented)\n"
    )
    assert not findings_of("ct-compare", good, "crypto/fixture.py")


def test_shard_routing_mod_detects_and_passes():
    bad = "def shard_of(iv, nshards):\n    return iv % nshards\n"
    assert findings_of("shard-routing-mod", bad, "sharding/fixture.py")
    good = (
        "def shard_of(plan, iv):\n"
        "    wrapped = iv % 2**32\n"  # constant modulus is not routing
        "    return plan.owner_of_iv(wrapped)\n"
    )
    assert not findings_of("shard-routing-mod", good, "sharding/fixture.py")
    # plan.py itself is the one sanctioned home of routing arithmetic.
    assert not RULES["shard-routing-mod"].applies_to("sharding/plan.py")


def test_secret_hygiene_detects_and_passes():
    fstring = 'def show(master):\n    return f"as secret: {master}"\n'
    assert findings_of("secret-hygiene", fstring, "core/fixture.py")
    repr_leak = (
        "class AsSecret:\n"
        "    def __repr__(self):\n"
        "        return '<AsSecret %s>' % self.routing_key.hex()\n"
    )
    assert findings_of("secret-hygiene", repr_leak, "core/fixture.py")
    raised = (
        "def check(kha):\n"
        "    raise ValueError(kha)\n"
    )
    assert findings_of("secret-hygiene", raised, "core/fixture.py")
    logged = "def note(log, master_key):\n    log.warning(master_key)\n"
    assert findings_of("secret-hygiene", logged, "core/fixture.py")
    good = (
        "def show(master, key):\n"
        '    return f"key is {len(key)} bytes, master id {master_id(master)}"\n'
        "def master_id(master):\n"
        "    return 7\n"
    )
    assert not findings_of("secret-hygiene", good, "core/fixture.py")
    # The four audited __repr__ hosts stay clean (PR 9 satellite).
    rule = RULES["secret-hygiene"]
    for rel in (
        "faults/plan.py",
        "sharding/pool.py",
        "state/columns.py",
        "topology.py",
    ):
        path = DEFAULT_ROOT / rel
        assert path.is_file(), f"audited module moved or deleted: {rel}"
        module = Module(rel, path.read_text())
        assert not list(rule.check_module(module)), rel


def test_determinism_detects_and_passes():
    cases = [
        "import time\ndef now():\n    return time.time()\n",
        "from time import time\ndef now():\n    return time()\n",
        "import os\ndef draw():\n    return os.urandom(8)\n",
        "import secrets\ndef draw():\n    return secrets.token_bytes(8)\n",
        "import random\ndef draw():\n    return random.randint(0, 5)\n",
        "from random import Random\ndef rng():\n    return Random()\n",
    ]
    for bad in cases:
        assert findings_of("determinism", bad, "workload/fixture.py"), bad
    good = (
        "import random\n"
        "import time\n"
        "def rng(seed):\n"
        "    return random.Random(seed)\n"
        "def stopwatch():\n"
        "    return time.perf_counter()\n"  # measurement, not sim state
    )
    assert not findings_of("determinism", good, "workload/fixture.py")
    # The sanctioned seams really are carved out of scope.
    rule = RULES["determinism"]
    assert not rule.applies_to("crypto/rng.py")
    assert not rule.applies_to("metrics/timing.py")
    assert rule.applies_to("sharding/pool.py")


def test_bounded_wait_detects_and_passes():
    bad = "def pull(conn):\n    return conn.recv_bytes()\n"
    assert findings_of("bounded-wait", bad, "sharding/fixture.py")
    none_timeout = "def pull(pool):\n    return pool.recv_bytes(0, timeout=None)\n"
    assert findings_of("bounded-wait", none_timeout, "sharding/fixture.py")
    polled = (
        "def pull(conn, timeout):\n"
        "    if not conn.poll(timeout):\n"
        "        raise TimeoutError\n"
        "    return conn.recv_bytes()\n"
    )
    assert not findings_of("bounded-wait", polled, "sharding/fixture.py")
    passed_through = (
        "def pull(pool, shard):\n"
        "    return pool.recv_bytes(shard, timeout=5.0)\n"
    )
    assert not findings_of("bounded-wait", passed_through, "sharding/fixture.py")
    # Out of scope outside the sharding package.
    assert not RULES["bounded-wait"].applies_to("core/hostdb.py")


def test_pickle_free_wire_detects_and_passes():
    bad = "def ship(conn, obj):\n    conn.send(obj)\n    return conn.recv()\n"
    assert len(findings_of("pickle-free-wire", bad, "sharding/fixture.py")) == 2
    good = (
        "def ship(conn, frame):\n"
        "    conn.send_bytes(frame)\n"
        "    return conn.recv_bytes()\n"
    )
    assert not findings_of("pickle-free-wire", good, "sharding/fixture.py")


def _wire_project(wire_extra="", pool_extra="", worker_extra=""):
    """A minimal synthetic dispatcher/worker pair over a toy protocol."""
    wire = (
        "MSG_PING = 1\n"
        "MSG_PONG = 2\n"
        f"{wire_extra}"
        "def encode_ping(n):\n"
        "    return bytes([MSG_PING]) + bytes(n)\n"
        "def decode_ping(msg):\n"
        "    return len(msg) - 1\n"
        "def encode_pong(n):\n"
        "    return bytes([MSG_PONG]) + bytes(n)\n"
        "def decode_pong(msg):\n"
        "    return len(msg) - 1\n"
    )
    pool = (
        "from . import wire\n"
        "def ask(conn):\n"
        "    conn.send_bytes(wire.encode_ping(3))\n"
        "    msg = conn.recv_bytes(timeout=1.0)\n"
        "    return wire.decode_pong(msg)\n"
        f"{pool_extra}"
    )
    worker = (
        "from . import wire\n"
        "def serve(conn, msg):\n"
        "    if msg[0] == wire.MSG_PING:\n"
        "        conn.send_bytes(wire.encode_pong(wire.decode_ping(msg)))\n"
        f"{worker_extra}"
    )
    return Project(
        sources={
            "sharding/wire.py": wire,
            "sharding/pool.py": pool,
            "sharding/supervisor.py": "",
            "sharding/worker.py": worker,
            "sharding/issuance.py": "",
        }
    )


def _wire_findings(project):
    return list(RULES["wire-protocol-completeness"].check_project(project))


def test_wire_protocol_complete_fixture_passes():
    assert not _wire_findings(_wire_project())


def test_wire_protocol_detects_unsent_kind():
    found = _wire_findings(_wire_project(wire_extra="MSG_LOST = 9\n"))
    assert any("MSG_LOST" in f.message and "never encoded" in f.message for f in found)


def test_wire_protocol_detects_missing_worker_arm():
    # The dispatcher starts sending a kind no worker arm handles.
    found = _wire_findings(
        _wire_project(
            wire_extra="MSG_FLUSH = 9\n",
            pool_extra=(
                "def flush(conn):\n"
                "    conn.send_bytes(bytes([wire.MSG_FLUSH]))\n"
            ),
        )
    )
    assert any(
        "MSG_FLUSH" in f.message and "no worker dispatch arm" in f.message
        for f in found
    )


def test_wire_protocol_detects_undecoded_reply():
    # The worker starts answering with a kind the dispatcher never reads.
    found = _wire_findings(
        _wire_project(
            wire_extra=(
                "MSG_NOTE = 9\n"
                "def encode_note(n):\n"
                "    return bytes([MSG_NOTE]) + bytes(n)\n"
                "def decode_note(msg):\n"
                "    return len(msg) - 1\n"
            ),
            worker_extra=(
                "def note(conn):\n"
                "    conn.send_bytes(wire.encode_note(1))\n"
            ),
        )
    )
    assert any(
        "MSG_NOTE" in f.message and "dispatcher never decodes" in f.message
        for f in found
    )


def test_wire_protocol_detects_encoder_without_decoder():
    found = _wire_findings(
        _wire_project(
            wire_extra=(
                "MSG_ODD = 9\n"
                "def encode_odd(n):\n"
                "    return bytes([MSG_ODD]) + bytes(n)\n"
            ),
            pool_extra=(
                "def odd(conn):\n"
                "    conn.send_bytes(wire.encode_odd(1))\n"
            ),
            worker_extra=(
                "def serve_odd(conn, msg):\n"
                "    return msg[0] == wire.MSG_ODD\n"
            ),
        )
    )
    assert any("encode_odd has no matching decode_odd" in f.message for f in found)


_FIXTURE_SCENARIOS = (
    "def register(name, description=None):\n"
    "    def deco(fn):\n"
    "        return fn\n"
    "    return deco\n"
    "@register('fig1', description='two ASes')\n"
    "def _fig1(arg):\n"
    "    return None\n"
    "@register('metro', description='metro:N')\n"
    "def _metro(arg):\n"
    "    return None\n"
)


def _scenario_project(tmp_path, test_source):
    """An on-disk src/repro + tests tree, the shape the rule resolves."""
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "scenarios.py").write_text(_FIXTURE_SCENARIOS)
    tests = tmp_path / "tests"
    tests.mkdir()
    (tests / "test_fixture.py").write_text(test_source)
    return Project(root=pkg)


def _coverage_findings(project):
    return list(RULES["scenario-coverage"].check_project(project))


def test_scenario_coverage_detects_unreferenced_preset(tmp_path):
    # Only fig1 is exercised; metro (arg-taking or not) is never named.
    found = _coverage_findings(
        _scenario_project(tmp_path, "def test_world():\n    build('fig1')\n")
    )
    assert len(found) == 1
    assert "metro" in found[0].message and "no test" in found[0].message


def test_scenario_coverage_passes_when_all_presets_referenced(tmp_path):
    # Both the bare form and the arg-taking "name:..." form count.
    covered = (
        "def test_world():\n"
        "    build('fig1')\n"
        "    build('metro:100k')\n"
    )
    assert not _coverage_findings(_scenario_project(tmp_path, covered))


def test_scenario_coverage_silent_without_tests_dir():
    # Synthetic in-memory projects have no tests tree — stay silent
    # rather than flagging every preset.
    project = Project(sources={"scenarios.py": _FIXTURE_SCENARIOS})
    assert not _coverage_findings(project)


def test_silent_except_detects_and_passes():
    bad = "def run(job):\n    try:\n        job()\n    except Exception:\n        pass\n"
    assert findings_of("silent-except", bad, "core/fixture.py")
    bare = "def run(job):\n    try:\n        job()\n    except:\n        pass\n"
    assert findings_of("silent-except", bare, "core/fixture.py")
    narrowed = (
        "def run(job):\n"
        "    try:\n"
        "        job()\n"
        "    except KeyError:\n"
        "        pass\n"
    )
    assert not findings_of("silent-except", narrowed, "core/fixture.py")
    bound = (
        "def run(job, log):\n"
        "    try:\n"
        "        job()\n"
        "    except Exception as exc:\n"
        "        log.append(exc)\n"
    )
    assert not findings_of("silent-except", bound, "core/fixture.py")
    reraised = (
        "def run(job):\n"
        "    try:\n"
        "        job()\n"
        "    except Exception:\n"
        "        raise RuntimeError('job failed')\n"
    )
    assert not findings_of("silent-except", reraised, "core/fixture.py")


# --------------------------------------------------------------------------
# 3. Suppressions and the baseline round-trip

_BAD_ROUTING = "def shard_of(iv, nshards):\n    return iv % nshards\n"


def test_inline_suppression_same_line_and_line_above():
    same_line = (
        "def shard_of(iv, nshards):\n"
        "    return iv % nshards  # audit: allow(shard-routing-mod) fixture\n"
    )
    line_above = (
        "def shard_of(iv, nshards):\n"
        "    # audit: allow(shard-routing-mod) — fixture justification\n"
        "    return iv % nshards\n"
    )
    for source in (same_line, line_above):
        report = run_analysis(
            project=Project(sources={"sharding/fixture.py": source}),
            rules=["shard-routing-mod"],
            baseline=set(),
        )
        assert not report.findings and len(report.suppressed) == 1


def test_suppression_is_rule_specific_and_string_safe():
    wrong_rule = (
        "def shard_of(iv, nshards):\n"
        "    return iv % nshards  # audit: allow(ct-compare)\n"
    )
    report = run_analysis(
        project=Project(sources={"sharding/fixture.py": wrong_rule}),
        rules=["shard-routing-mod"],
        baseline=set(),
    )
    assert len(report.findings) == 1 and not report.suppressed
    # A '#' inside a string literal cannot fake a suppression.
    in_string = (
        "COMMENT = '# audit: allow(shard-routing-mod)'\n"
        "def shard_of(iv, nshards):\n"
        "    return iv % nshards\n"
    )
    report = run_analysis(
        project=Project(sources={"sharding/fixture.py": in_string}),
        rules=["shard-routing-mod"],
        baseline=set(),
    )
    assert len(report.findings) == 1 and not report.suppressed


def test_baseline_round_trip(tmp_path):
    project = Project(sources={"sharding/fixture.py": _BAD_ROUTING})
    baseline_path = tmp_path / "baseline.txt"

    # Fresh finding fails the run...
    report = run_analysis(
        project=project, rules=["shard-routing-mod"], baseline=baseline_path
    )
    assert len(report.new) == 1

    # ...until grandfathered; then the same finding is baselined.
    write_baseline(report.findings, baseline_path)
    assert load_baseline(baseline_path) == {f.key for f in report.findings}
    report = run_analysis(
        project=project, rules=["shard-routing-mod"], baseline=baseline_path
    )
    assert not report.new and len(report.baselined) == 1

    # A *different* new violation still fails despite the baseline.
    worse = _BAD_ROUTING + "def again(iv, num_shards):\n    return iv % num_shards\n"
    report = run_analysis(
        project=Project(sources={"sharding/fixture.py": worse}),
        rules=["shard-routing-mod"],
        baseline=baseline_path,
    )
    assert len(report.new) == 1 and len(report.baselined) == 1

    # Fixing the code leaves the baseline entry stale — flagged for removal.
    report = run_analysis(
        project=Project(sources={"sharding/fixture.py": "def ok():\n    pass\n"}),
        rules=["shard-routing-mod"],
        baseline=baseline_path,
    )
    assert not report.findings and len(report.stale_baseline) == 1


def test_checked_in_baseline_parses():
    entries = load_baseline()
    for entry in entries:
        rule, _, location = entry.partition(":")
        assert rule in RULES, f"baseline names unknown rule: {entry}"
        assert location.count(":") == 1, f"malformed baseline entry: {entry}"
