"""Cross-process equivalence of the sharded data plane.

The contract (see :mod:`repro.sharding.pool`): the same packet stream
through ``ShardedDataPlane(shards=N)`` and through a single-process
:class:`BorderRouter` burst loop yields identical verdict sequences, and
the shard counters sum to the single router's counters.  A seeded fuzzer
mixes every verdict class — including mid-stream revocations and replay
duplicates whose source EphIDs straddle shard boundaries — and checks
the property under both crypto backends and at 2 and 3 shards (3
exercises the non-power-of-two routing path).
"""

import dataclasses
import random

import pytest

from repro.core.border_router import Action, BorderRouter, DropReason
from repro.core.config import ApnaConfig
from repro.core.replay_filter import RotatingReplayFilter
from repro.crypto import backend as crypto_backend
from repro.sharding import ShardedDataPlane
from repro.wire.apna import Endpoint

from tests.conftest import build_world

BACKENDS = crypto_backend.available_backends()
WINDOW = 900.0
BITS = 1 << 16
SHARD_COUNTS = (2, 3)
#: Both state stores must produce bit-identical verdicts and counters
#: (the repro.state columnar stores vs the original object stores).
STATE_BACKENDS = ("object", "columnar")


def _build_world(backend, nshards, state_backend="columnar", routing="keyed"):
    with crypto_backend.use_backend(backend):
        world = build_world(
            config=ApnaConfig(
                replay_protection=True,
                in_network_replay_filter=True,
                replay_filter_window=WINDOW,
                replay_filter_bits=BITS,
                forwarding_shards=nshards,
                state_backend=state_backend,
                shard_routing=routing,
            ),
            host_names=("alice", "bob", "carol", "dave", "erin"),
        )
        world.crypto_backend = backend
    return world


def _reference_router(world):
    """A fresh single-process router over the world's hostdb/revocations."""
    return BorderRouter(
        world.as_a.aid,
        world.as_a.codec,
        world.as_a.hostdb,
        world.as_a.revocations,
        world.network.scheduler.clock(),
        packet_mac_size=world.config.packet_mac_size,
        replay_filter=RotatingReplayFilter(
            window=WINDOW, bits_per_generation=BITS
        ),
    )


def _fresh_plane(world, nshards):
    as_a = world.as_a
    return ShardedDataPlane.from_parts(
        aid=as_a.aid,
        enc_key=as_a.keys.secret.ephid_enc,
        mac_key=as_a.keys.secret.ephid_mac,
        hostdb=as_a.hostdb,
        revocations=as_a.revocations,
        nshards=nshards,
        plan=as_a.shard_plan,
        crypto_backend=world.crypto_backend,
        packet_mac_size=world.config.packet_mac_size,
        with_nonce=True,
        replay_window=WINDOW,
        replay_bits=BITS,
        state_backend=world.config.state_backend,
    )


def _packet_mix(world, rng):
    """A packet builder covering every verdict class.

    ``alice``/``carol``/``erin`` home on AS 100 and, with round-robin
    shard assignment, land on different shards — so replay duplicates
    and revocations exercise more than one worker.
    """
    with crypto_backend.use_backend(world.crypto_backend):
        alice = world.hosts["alice"]
        carol = world.hosts["carol"]
        erin = world.hosts["erin"]
        bob = world.hosts["bob"]
        sources = [
            (host, host.acquire_ephid_direct()) for host in (alice, carol, erin)
        ]
        peer = bob.acquire_ephid_direct()
        local_peer = carol.acquire_ephid_direct()
        revocable = [
            (host, host.acquire_ephid_direct()) for host in (alice, erin)
        ]
        codec = world.as_a.codec
        alice_hid = world.as_a.hostdb.find_by_subscriber(alice.subscriber_id).hid
        expired_ephid = codec.seal(
            alice_hid, exp_time=1, iv=world.as_a.ivs.next_iv_for(alice_hid)
        )
        bad_hid = 0xDEAD_0000
        bad_hid_ephid = codec.seal(
            bad_hid, exp_time=2**31, iv=world.as_a.ivs.next_iv_for(bad_hid)
        )

    dst_inter = Endpoint(world.as_b.aid, peer.ephid)
    dst_intra = Endpoint(world.as_a.aid, local_peer.ephid)
    nonces = iter(range(1, 10**6))
    seen = []

    def build(kind):
        host, src = rng.choice(sources)
        make = host.stack.make_packet
        if kind in ("inter", "intra"):
            dst = dst_inter if kind == "inter" else dst_intra
            packet = make(src.ephid, dst, b"data", nonce=next(nonces))
            seen.append(packet)
            return packet
        if kind == "replay" and seen:
            return rng.choice(seen)
        if kind == "forged":
            packet = make(src.ephid, dst_inter, b"data", nonce=next(nonces))
            return dataclasses.replace(
                packet,
                header=dataclasses.replace(
                    packet.header, src_ephid=rng.randbytes(16)
                ),
            )
        if kind == "expired":
            return make(expired_ephid, dst_inter, b"data", nonce=next(nonces))
        if kind == "revoked":
            rev_host, rev = rng.choice(revocable)
            return rev_host.stack.make_packet(
                rev.ephid, dst_inter, b"data", nonce=next(nonces)
            )
        if kind == "bad-hid":
            return make(bad_hid_ephid, dst_inter, b"data", nonce=next(nonces))
        if kind == "bad-mac":
            packet = make(src.ephid, dst_inter, b"data", nonce=next(nonces))
            return dataclasses.replace(
                packet, header=packet.header.with_mac(b"\xff" * 8)
            )
        if kind == "foreign":
            packet = make(src.ephid, dst_inter, b"data", nonce=next(nonces))
            return dataclasses.replace(
                packet, header=dataclasses.replace(packet.header, src_aid=999)
            )
        if kind == "forged-dst":
            return make(
                src.ephid,
                Endpoint(world.as_a.aid, rng.randbytes(16)),
                b"data",
                nonce=next(nonces),
            )
        packet = make(src.ephid, dst_inter, b"data", nonce=next(nonces))
        seen.append(packet)
        return packet

    return build, revocable


KINDS = (
    "inter", "inter", "inter", "intra", "replay", "replay", "forged",
    "expired", "revoked", "bad-hid", "bad-mac", "foreign", "forged-dst",
)


def _assert_counters_match(plane, router):
    """Shard counter sums (plus dispatcher transit) == single-router state."""
    stats = plane.stats()
    for reason, count in router.drops.items():
        assert stats[reason.value] == count, reason
    assert stats["forwarded_inter"] == router.forwarded_inter
    assert stats["forwarded_intra"] == router.forwarded_intra
    if router.replay_filter is not None:
        assert stats["replay_passed"] == router.replay_filter.passed
        assert stats["replay_replays"] == router.replay_filter.replays


@pytest.mark.parametrize("state_backend", STATE_BACKENDS)
@pytest.mark.parametrize("nshards", SHARD_COUNTS)
@pytest.mark.parametrize("backend", BACKENDS)
class TestShardedEquivalence:
    def test_fuzzed_egress_bursts(self, backend, nshards, state_backend):
        world = _build_world(backend, nshards, state_backend)
        world.network.run_until(5.0)  # expire the crafted exp_time=1 EphID
        rng = random.Random(0x5AD + nshards)
        build, revocable = _packet_mix(world, rng)
        # The mix revokes EphIDs mid-stream; seed the initial revocation
        # before the plane snapshots so both sides start identical.
        first_host, first = revocable[0]
        world.as_a.revocations.add(first.ephid, 1e12)
        router = _reference_router(world)
        plane = _fresh_plane(world, nshards)
        try:
            # Keep the reference revocation list and the shard replicas in
            # lockstep from here on.
            world.as_a.revocations.on_add = plane.revoke_ephid
            for round_no in range(6):
                burst = [
                    build(rng.choice(KINDS)) for _ in range(rng.randint(1, 40))
                ]
                now = world.as_a.clock()
                scalar = [router.process_outgoing(p) for p in burst]
                sharded = plane.process_packets(
                    [(p, True) for p in burst], now
                )
                assert sharded == scalar
                if round_no == 2:
                    # Mid-stream revocation: must reach the owning shard
                    # before the next burst.
                    _, second = revocable[1]
                    world.as_a.revocations.add(second.ephid, 1e12)
            _assert_counters_match(plane, router)
            hits = {reason for reason, n in router.drops.items() if n}
            assert {
                DropReason.SRC_FORGED, DropReason.SRC_EXPIRED,
                DropReason.SRC_REVOKED, DropReason.SRC_HID_INVALID,
                DropReason.BAD_MAC, DropReason.REPLAYED,
                DropReason.NOT_LOCAL_SOURCE, DropReason.DST_FORGED,
            } <= hits
            assert router.forwarded_inter > 0
            assert router.forwarded_intra > 0
        finally:
            world.as_a.revocations.on_add = None
            plane.close()

    def test_fuzzed_mixed_direction_bursts(self, backend, nshards, state_backend):
        """Egress and ingress interleaved in one burst, the way the
        border-router node drains them (egress subset first)."""
        world = _build_world(backend, nshards, state_backend)
        world.network.run_until(5.0)
        rng = random.Random(0xB0B + nshards)
        build, _ = _packet_mix(world, rng)
        router = _reference_router(world)
        plane = _fresh_plane(world, nshards)
        try:
            for _ in range(5):
                items = []
                for _ in range(rng.randint(2, 32)):
                    packet = build(
                        rng.choice(("inter", "intra", "replay", "forged-dst"))
                    )
                    if rng.random() < 0.4:
                        # Ingress: transit (foreign dst) or local delivery.
                        dst_aid = 777 if rng.random() < 0.4 else 100
                        packet = dataclasses.replace(
                            packet,
                            header=dataclasses.replace(
                                packet.header, dst_aid=dst_aid
                            ),
                        )
                        items.append((packet, False))
                    else:
                        items.append((packet, True))
                now = world.as_a.clock()
                # Reference: the node's two-pass split, egress then ingress.
                reference = [None] * len(items)
                egress = [i for i, (_, out) in enumerate(items) if out]
                ingress = [i for i, (_, out) in enumerate(items) if not out]
                for indexes, process in (
                    (egress, router.process_batch),
                    (ingress, router.process_incoming_batch),
                ):
                    for i, verdict in zip(
                        indexes, process([items[i][0] for i in indexes])
                    ):
                        reference[i] = verdict
                assert plane.process_packets(items, now) == reference
            _assert_counters_match(plane, router)
            assert router.forwarded_inter > 0
        finally:
            plane.close()

    def test_replay_duplicates_straddle_shards(self, backend, nshards, state_backend):
        """The same duplicate pair, repeated across hosts on different
        shards, is flagged identically in both planes."""
        world = _build_world(backend, nshards, state_backend)
        rng = random.Random(1)
        build, _ = _packet_mix(world, rng)
        router = _reference_router(world)
        plane = _fresh_plane(world, nshards)
        try:
            firsts = [build("inter") for _ in range(nshards * 2)]
            shards_hit = {
                plane.plan.shard_of_ephid(p.header.src_ephid) for p in firsts
            }
            assert len(shards_hit) > 1  # genuinely straddles a boundary
            burst = firsts + firsts  # every packet replayed once
            now = world.as_a.clock()
            scalar = [router.process_outgoing(p) for p in burst]
            sharded = plane.process_packets([(p, True) for p in burst], now)
            assert sharded == scalar
            assert [v.action for v in sharded[: len(firsts)]] == [
                Action.FORWARD_INTER
            ] * len(firsts)
            assert all(
                v.reason is DropReason.REPLAYED
                for v in sharded[len(firsts) :]
            )
            _assert_counters_match(plane, router)
        finally:
            plane.close()


@pytest.mark.parametrize("nshards", SHARD_COUNTS)
@pytest.mark.parametrize("backend", BACKENDS)
class TestKeyedVsResidueEquivalence:
    """Keyed routing changes which bytes route where — and nothing else.

    Two worlds built from one seed, differing only in ``shard_routing``,
    see the same fuzz schedule (packet kinds, directions, mid-stream
    revocation timing).  The IV bytes of every EphID differ between the
    worlds (pinned under different maps), but the verdict each position
    gets must be identical — and each world's sharded plane must match
    its own single-process oracle along the way.
    """

    def test_verdict_streams_identical(self, backend, nshards):
        streams = {}
        for routing in ("keyed", "residue"):
            world = _build_world(backend, nshards, routing=routing)
            world.network.run_until(5.0)
            rng = random.Random(0x0E5 + nshards)
            build, revocable = _packet_mix(world, rng)
            world.as_a.revocations.add(revocable[0][1].ephid, 1e12)
            router = _reference_router(world)
            plane = _fresh_plane(world, nshards)
            assert plane.plan.mode == routing
            verdicts = []
            try:
                world.as_a.revocations.on_add = plane.revoke_ephid
                for round_no in range(6):
                    burst = [
                        build(rng.choice(KINDS))
                        for _ in range(rng.randint(1, 40))
                    ]
                    now = world.as_a.clock()
                    scalar = [router.process_outgoing(p) for p in burst]
                    sharded = plane.process_packets(
                        [(p, True) for p in burst], now
                    )
                    assert sharded == scalar
                    verdicts.extend(sharded)
                    if round_no == 2:
                        world.as_a.revocations.add(revocable[1][1].ephid, 1e12)
            finally:
                world.as_a.revocations.on_add = None
                plane.close()
            streams[routing] = verdicts
        assert streams["keyed"] == streams["residue"]
