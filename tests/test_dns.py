"""Tests for the DNS substrate: records, zone signing, encrypted
resolution and the receive-only EphID service flow (Section VII-A)."""

import pytest

from repro.core.certs import FLAG_RECEIVE_ONLY
from repro.dns import (
    DnsClient,
    DnsError,
    DnsQuery,
    DnsRecord,
    DnsResponse,
    DnsServer,
    DnsZone,
    publish_service,
)
from repro.core.keys import SigningKeyPair
from repro.crypto.rng import DeterministicRng
from tests.conftest import build_world


@pytest.fixture()
def dns_world():
    world = build_world()
    zone = DnsZone(world.rng)
    # Both ASes run DNS endpoints backed by the same (global) zone.
    DnsServer(world.as_a, zone)
    DnsServer(world.as_b, zone)
    world.zone = zone
    return world


class TestRecords:
    def make_cert(self, rng):
        from repro.core.keys import EphIdKeyPair

        keypair = EphIdKeyPair.generate(rng)
        from repro.core.certs import EphIdCertificate

        signer = SigningKeyPair.generate(rng)
        return EphIdCertificate.issue(
            signer,
            ephid=rng.read(16),
            exp_time=10**9,
            dh_public=keypair.exchange.public,
            sig_public=keypair.signing.public,
            aid=100,
            aa_ephid=rng.read(16),
            flags=FLAG_RECEIVE_ONLY,
        )

    def test_record_roundtrip(self):
        rng = DeterministicRng(1)
        zone = DnsZone(rng)
        record = zone.register("shop.example", self.make_cert(rng), ipv4_hint=0x0A000001)
        parsed = DnsRecord.parse(record.pack())
        assert parsed == record
        parsed.verify(zone.public_key)

    def test_tampered_record_rejected(self):
        rng = DeterministicRng(2)
        zone = DnsZone(rng)
        record = zone.register("shop.example", self.make_cert(rng))
        evil = DnsRecord(
            name="evil.example",
            cert=record.cert,
            ipv4_hint=record.ipv4_hint,
            signature=record.signature,
        )
        with pytest.raises(DnsError):
            evil.verify(zone.public_key)

    def test_wrong_zone_key_rejected(self):
        rng = DeterministicRng(3)
        zone_a, zone_b = DnsZone(rng), DnsZone(rng)
        record = zone_a.register("a.example", self.make_cert(rng))
        with pytest.raises(DnsError):
            record.verify(zone_b.public_key)

    def test_reregistration_replaces(self):
        rng = DeterministicRng(4)
        zone = DnsZone(rng)
        first = zone.register("x.example", self.make_cert(rng))
        second = zone.register("x.example", self.make_cert(rng))
        assert zone.lookup("x.example") == second
        assert len(zone) == 1
        assert zone.updates == 2

    def test_query_response_roundtrip(self):
        rng = DeterministicRng(5)
        zone = DnsZone(rng)
        record = zone.register("y.example", self.make_cert(rng))
        assert DnsQuery.parse(DnsQuery("y.example").pack()).name == "y.example"
        found = DnsResponse.parse(DnsResponse(True, record).pack())
        assert found.record == record
        missing = DnsResponse.parse(DnsResponse(False).pack())
        assert not missing.found

    def test_bad_names(self):
        with pytest.raises(DnsError):
            DnsQuery("").pack()
        with pytest.raises(DnsError):
            DnsQuery("x" * 300).pack()


class TestResolutionOverNetwork:
    def test_encrypted_resolution(self, dns_world):
        world = dns_world
        bob = world.hosts["bob"]
        record = publish_service(bob, world.zone, "service.example")
        assert record.cert.receive_only

        alice = world.hosts["alice"]
        resolver = DnsClient(alice, world.zone.public_key)
        results = []
        resolver.resolve("service.example", results.append)
        world.network.run()
        assert len(results) == 1
        assert results[0].cert.ephid == record.cert.ephid
        assert resolver.resolved == 1

    def test_missing_name_returns_none(self, dns_world):
        world = dns_world
        alice = world.hosts["alice"]
        resolver = DnsClient(alice, world.zone.public_key)
        results = []
        resolver.resolve("does-not-exist.example", results.append)
        world.network.run()
        assert results == [None]
        assert resolver.failures == 1

    def test_query_is_encrypted_on_the_wire(self, dns_world):
        # "only the DNS server and the host know the content of the query"
        world = dns_world
        alice = world.hosts["alice"]
        captured = []
        access_link = world.as_a.node._links["alice"]
        original = access_link.send_from

        def spy(sender, frame):
            captured.append(frame)
            return original(sender, frame)

        access_link.send_from = spy
        resolver = DnsClient(alice, world.zone.public_key)
        resolver.resolve("very-private-domain.example", lambda record: None)
        world.network.run()
        assert captured
        for frame in captured:
            assert b"very-private-domain" not in frame

    def test_third_party_dns_server(self, dns_world):
        # A privacy-conscious host resolves through ANOTHER AS's DNS
        # (Section VII-A: "use a DNS server that he trusts and that is
        # not operated by the AS that he resides in").
        world = dns_world
        bob = world.hosts["bob"]
        publish_service(bob, world.zone, "svc.example")
        alice = world.hosts["alice"]
        foreign_dns_cert = world.as_b.dns_identity.owned.cert
        resolver = DnsClient(
            alice, world.zone.public_key, server_cert=foreign_dns_cert, port=5454
        )
        results = []
        resolver.resolve("svc.example", results.append)
        world.network.run()
        assert len(results) == 1 and results[0] is not None


class TestClientServerEstablishment:
    def test_receive_only_flow_end_to_end(self, dns_world):
        """The full Section VII-A client-server dance: resolve, connect to
        the receive-only EphID with 0-RTT data, server answers from a
        serving EphID, client continues on the serving session."""
        world = dns_world
        bob = world.hosts["bob"]
        record = publish_service(bob, world.zone, "web.example")
        requests = []
        bob.listen(80, lambda session, transport, data: requests.append((session, data)))

        alice = world.hosts["alice"]
        serving_sessions = []
        alice.connect(
            record.cert,
            early_data=b"GET /index.html",
            dst_port=80,
            on_accept=serving_sessions.append,
        )
        world.network.run()

        # Server got the 0-RTT request on the SERVING session.
        assert len(requests) == 1
        assert requests[0][1] == b"GET /index.html"
        serving_session_server = requests[0][0]
        assert serving_session_server.local.ephid != record.cert.ephid

        # Client learned the serving EphID and can keep talking on it.
        assert len(serving_sessions) == 1
        client_session = serving_sessions[0]
        assert client_session.peer_cert.ephid == serving_session_server.local.ephid
        alice.send_data(client_session, b"GET /second", dst_port=80)
        world.network.run()
        assert len(requests) == 2

        # And the server can push data back.
        serving_session_server.peer_cert.verify(
            world.rpki.signing_key_of(100), now=world.network.now
        )
        bob.send_data(serving_session_server, b"200 OK")
        world.network.run()
        assert alice.inbox[-1][2] == b"200 OK"

    def test_shutoff_on_published_ephid_does_not_break_service(self, dns_world):
        """Receive-only EphIDs cannot be shut off, so a published service
        survives hostile shutoff attempts (the motivation for
        receive-only EphIDs in Section VII-A)."""
        world = dns_world
        bob = world.hosts["bob"]
        record = publish_service(bob, world.zone, "resilient.example")
        # Mallory tries to get the published EphID revoked with a
        # fabricated packet: the AA refuses (ownership checks fail).
        mallory = world.hosts["alice"]
        m_owned = mallory.acquire_ephid_direct()
        from repro.wire.apna import ApnaHeader, ApnaPacket

        fake_header = ApnaHeader(
            src_aid=200,
            src_ephid=record.cert.ephid,  # claim the RO EphID sent traffic
            dst_ephid=m_owned.ephid,
            dst_aid=100,
        )
        fake = ApnaPacket(fake_header, b"fabricated evidence")
        request = mallory.stack.build_shutoff_request(fake.to_wire(), m_owned)
        response = world.as_b.aa.handle_shutoff(request)
        assert not response.accepted
        # The service EphID is not in any revocation list.
        assert not world.as_b.revocations.contains(record.cert.ephid)
