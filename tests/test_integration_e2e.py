"""End-to-end integration: the full Fig. 1 workflow over the simulated
network, byte-for-byte through GRE/IPv4 encapsulation.

Covers: bootstrap -> EphID issuance -> connection establishment ->
encrypted communication -> shutoff -> ICMP -> replay protection.
"""

import pytest

from repro.core.config import ApnaConfig
from repro.wire.apna import ApnaPacket, Endpoint
from tests.conftest import build_world


class TestEncryptedCommunication:
    def test_fig1_full_workflow(self, world):
        """The four steps of Section III-C, end to end."""
        alice, bob = world.hosts["alice"], world.hosts["bob"]
        # Steps 1-2 (bootstrap + issuance) happened in the fixture/calls.
        alice_owned = alice.acquire_ephid_direct()
        bob_owned = bob.acquire_ephid_direct()
        # Step 3: connection establishment with 0-RTT data.
        session = alice.connect(
            bob_owned.cert, early_data=b"GET / HTTP/1.1", src_owned=alice_owned
        )
        world.network.run()
        # Bob got the early data without any extra round trip.
        assert len(bob.inbox) == 1
        _, transport, data = bob.inbox[0]
        assert data == b"GET / HTTP/1.1"
        # Step 4: encrypted communication, both directions.
        bob_session = bob.sessions[(bob_owned.ephid, alice_owned.ephid)]
        bob.send_data(bob_session, b"HTTP/1.1 200 OK")
        world.network.run()
        assert alice.inbox[-1][2] == b"HTTP/1.1 200 OK"

    def test_payload_is_encrypted_on_the_wire(self, world):
        """Host privacy + data privacy: the wire shows EphIDs and
        ciphertext, never plaintext or identity information."""
        alice, bob = world.hosts["alice"], world.hosts["bob"]
        bob_owned = bob.acquire_ephid_direct()
        captured = []

        inter_link = world.as_a.node._links["AS200"]
        original = inter_link.send_from

        def spy(sender, frame):
            captured.append(frame)
            return original(sender, frame)

        inter_link.send_from = spy
        secret = b"extremely secret plaintext"
        alice.connect(bob_owned.cert, early_data=secret)
        world.network.run()
        assert captured, "no inter-AS frames captured"
        for frame in captured:
            assert secret not in frame

    def test_sender_receives_replies_via_ephid(self, world):
        # EphIDs preserve the return address (Section III-A).
        alice, bob = world.hosts["alice"], world.hosts["bob"]
        bob_owned = bob.acquire_ephid_direct()
        replies = []
        alice_session = alice.connect(bob_owned.cert, early_data=b"ping?")
        world.network.run()
        session_b = next(iter(bob.sessions.values()))
        bob.send_data(session_b, b"pong!")
        world.network.run()
        assert alice.inbox[-1][2] == b"pong!"

    def test_listener_dispatch_by_port(self, world):
        alice, bob = world.hosts["alice"], world.hosts["bob"]
        bob_owned = bob.acquire_ephid_direct()
        received = []
        bob.listen(8080, lambda session, transport, data: received.append(data))
        session = alice.connect(bob_owned.cert)
        world.network.run()
        alice.send_data(session, b"to the listener", dst_port=8080)
        world.network.run()
        assert received == [b"to the listener"]

    def test_three_as_transit(self):
        """A -> B -> C topology: transit AS forwards without touching crypto."""
        from repro.core.autonomous_system import ApnaAutonomousSystem

        world = build_world(host_names=())
        as_c = ApnaAutonomousSystem(
            300, world.network, world.rpki, world.anchor, config=world.config, rng=world.rng
        )
        # Chain: AS100 -- AS200 -- AS300 (no direct 100-300 link).
        world.as_b.connect_to(as_c, latency=0.010)
        alice = world.as_a.attach_host("alice")
        alice.bootstrap()
        carol = as_c.attach_host("carol")
        carol.bootstrap()
        world.network.compute_routes()

        carol_owned = carol.acquire_ephid_direct()
        alice.connect(carol_owned.cert, early_data=b"across transit")
        world.network.run()
        assert carol.inbox[0][2] == b"across transit"
        # The transit AS only did AID-based forwarding.
        assert world.as_b.br.forwarded_inter >= 1
        assert world.as_b.br.forwarded_intra == 0


class TestShutoffOverNetwork:
    def test_full_shutoff_flow(self, world):
        """Bob shuts off Alice's EphID through AS-A's AA, over the wire."""
        alice, bob = world.hosts["alice"], world.hosts["bob"]
        alice_owned = alice.acquire_ephid_direct()
        bob_owned = bob.acquire_ephid_direct()
        session = alice.connect(
            bob_owned.cert, early_data=b"unwanted", src_owned=alice_owned
        )
        world.network.run()

        # Bob reconstructs the offending packet from what he received; in
        # this API the host node keeps no packet log, so we rebuild the
        # same wire bytes Alice sent (content-identical evidence).
        from repro.core import framing
        from repro.core.session import ConnectionRequest

        # Capture the offending packet by having alice resend data.
        captured = []
        bob_node_receive = bob.handle_frame

        def capture(frame_bytes, *, from_node):
            captured.append(frame_bytes)
            bob_node_receive(frame_bytes, from_node=from_node)

        bob.handle_frame = capture
        alice.send_data(session, b"more spam")
        world.network.run()
        offending = ApnaPacket.from_wire(captured[-1])

        responses = []
        bob.send_shutoff(
            offending,
            signer=bob_owned,
            aa_endpoint=Endpoint(alice_owned.cert.aid, alice_owned.cert.aa_ephid),
            callback=responses.append,
        )
        world.network.run()
        assert len(responses) == 1
        assert responses[0].accepted
        # Alice's EphID is now blocked at her own AS's border router.
        alice.send_data(session, b"this must not arrive")
        world.network.run()
        from repro.core.border_router import DropReason

        assert world.as_a.br.drops[DropReason.SRC_REVOKED] >= 1

    def test_shutoff_signer_must_own_destination(self, world):
        alice, bob = world.hosts["alice"], world.hosts["bob"]
        alice_owned = alice.acquire_ephid_direct()
        bob_owned = bob.acquire_ephid_direct()
        other = bob.acquire_ephid_direct()
        packet = alice.stack.make_packet(
            alice_owned.ephid, Endpoint(200, bob_owned.ephid), b"x"
        )
        from repro.core.errors import ShutoffError

        with pytest.raises(ShutoffError):
            bob.send_shutoff(
                packet,
                signer=other,
                aa_endpoint=Endpoint(100, alice_owned.cert.aa_ephid),
            )


class TestIcmp:
    def test_ping_round_trip(self, world):
        alice, bob = world.hosts["alice"], world.hosts["bob"]
        bob_owned = bob.acquire_ephid_direct()
        rtts = []
        alice.ping(Endpoint(200, bob_owned.ephid), callback=rtts.append)
        world.network.run()
        assert len(rtts) == 1
        # 2 access links (1 ms each) + inter-AS link (10 ms) each way, plus
        # serialization: RTT slightly above 24 ms.
        assert rtts[0] == pytest.approx(0.024, rel=0.1)
        # Bob logged the echo request.
        assert any(m.type_name == "echo-request" for m in bob.icmp_log)

    def test_unreachable_generated_for_expired_destination(self, world):
        """Feedback from the network (Section VIII-B): the border router
        answers with ICMP when the destination EphID has expired."""
        alice, bob = world.hosts["alice"], world.hosts["bob"]
        record = world.as_b.hostdb.find_by_subscriber(bob.subscriber_id)
        stale = world.as_b.codec.seal(
            hid=record.hid, exp_time=5, iv=world.as_b.ivs.next_iv()
        )
        world.network.run_until(10.0)
        alice_owned = alice.acquire_ephid_direct()
        packet = alice.stack.make_packet(
            alice_owned.ephid, Endpoint(200, stale), b"late"
        )
        alice._transmit(packet)
        world.network.run()
        assert any(m.type_name == "dest-unreachable" for m in alice.icmp_log)
        from repro.wire.icmp import CODE_EPHID_EXPIRED

        assert any(m.code == CODE_EPHID_EXPIRED for m in alice.icmp_log)


class TestReplayProtection:
    def test_replayed_packet_dropped_with_nonces(self, world_with_nonces):
        world = world_with_nonces
        alice, bob = world.hosts["alice"], world.hosts["bob"]
        bob_owned = bob.acquire_ephid_direct()
        session = alice.connect(bob_owned.cert, early_data=b"first")
        world.network.run()
        assert len(bob.inbox) == 1

        # An on-path adversary replays the last frame toward Bob.
        captured = []
        original = bob.handle_frame

        def capture(frame_bytes, *, from_node):
            captured.append(frame_bytes)
            original(frame_bytes, from_node=from_node)

        bob.handle_frame = capture
        alice.send_data(session, b"second")
        world.network.run()
        assert len(bob.inbox) == 2
        replayed = captured[-1]
        bob.handle_frame(replayed, from_node=world.as_b.node.name)
        assert len(bob.inbox) == 2  # no duplicate delivery
        assert bob.replay_drops == 1

    def test_nonce_header_is_56_bytes(self, world_with_nonces):
        world = world_with_nonces
        alice = world.hosts["alice"]
        owned = alice.acquire_ephid_direct()
        packet = alice.stack.make_packet(
            owned.ephid, Endpoint(200, bytes(16)), b"", nonce=1
        )
        assert packet.header.wire_size == 56
