"""Property-style fuzz tests for the data-plane hot paths.

Seeded-random sweeps (deterministic, so failures reproduce) over:

* :class:`EphIdCodec` — seal→open round-trips across the whole
  (hid, exp_time, iv) space, byte-identical sealing across crypto
  backends, and rejection of *every* single-bit corruption of a sealed
  EphID.
* :class:`RotatingReplayFilter` — accept/reject and counter invariants
  under randomised traffic and rotation schedules.
"""

import random

import pytest

from repro.core.ephid import EPHID_SIZE, EphIdCodec
from repro.core.errors import EphIdError
from repro.core.replay_filter import RotatingReplayFilter
from repro.crypto import backend as crypto_backend

ENC_KEY = bytes(range(16))
MAC_KEY = bytes(range(16, 32))


def _codecs():
    """One codec per available backend (same keys, so EphIDs interoperate)."""
    return {
        name: EphIdCodec(ENC_KEY, MAC_KEY, backend=crypto_backend.get_backend(name))
        for name in crypto_backend.available_backends()
    }


def test_ephid_roundtrip_over_random_inputs():
    codecs = _codecs()
    rnd = random.Random(20260730)
    boundary = [0, 1, 2**32 - 1]
    triples = [(h, e, iv) for h in boundary for e in boundary for iv in boundary]
    triples += [
        (rnd.randrange(2**32), rnd.randrange(2**32), rnd.randrange(2**32))
        for _ in range(200)
    ]
    for hid, exp_time, iv in triples:
        sealed = {name: codec.seal(hid, exp_time, iv) for name, codec in codecs.items()}
        # All backends produce the identical 16-byte token...
        assert len(set(sealed.values())) == 1
        token = next(iter(sealed.values()))
        assert len(token) == EPHID_SIZE
        # ...and every backend opens every backend's token.
        for codec in codecs.values():
            info = codec.open(token)
            assert (info.hid, info.exp_time) == (hid, exp_time)


def test_every_single_bit_flip_is_rejected():
    codecs = _codecs()
    rnd = random.Random(0xB17F11B)
    for _ in range(4):
        hid, exp_time, iv = (rnd.randrange(2**32) for _ in range(3))
        for name, codec in codecs.items():
            sealed = codec.seal(hid, exp_time, iv)
            for bit in range(8 * EPHID_SIZE):
                corrupted = bytearray(sealed)
                corrupted[bit // 8] ^= 1 << (bit % 8)
                with pytest.raises(EphIdError):
                    codec.open(bytes(corrupted))


def test_ephid_wrong_length_rejected():
    for codec in _codecs().values():
        for bad_len in (0, 1, 15, 17, 32):
            with pytest.raises(EphIdError):
                codec.open(bytes(bad_len))


def test_replay_filter_invariants_under_random_schedules():
    rnd = random.Random(0x5EED)
    for trial in range(5):
        window = rnd.choice([1.0, 5.0, 30.0])
        filt = RotatingReplayFilter(window=window, bits_per_generation=1 << 16)
        now = 0.0
        seen_since_rotation: set[tuple[bytes, int]] = set()
        observes = 0
        for _ in range(400):
            now += rnd.choice([0.0, 0.01, window / 7, window / 3])
            ephid = rnd.randrange(16).to_bytes(16, "big")
            nonce = rnd.randrange(64)
            rotations_before = filt.rotations
            fresh = filt.observe(ephid, nonce, now)
            observes += 1
            key = (ephid, nonce)
            if key in seen_since_rotation:
                # Anything observed since the last rotation is in the
                # current or previous generation (a single observe can
                # rotate at most once), so the filter MUST flag it.
                assert not fresh
            if filt.rotations != rotations_before:
                seen_since_rotation = set()
            seen_since_rotation.add(key)
            # Counter bookkeeping never drifts.
            assert filt.passed + filt.replays == observes
        assert filt.memory_bytes == 2 * (1 << 16) // 8


def test_replay_filter_immediate_duplicate_always_rejected():
    rnd = random.Random(0xD011)
    filt = RotatingReplayFilter(window=10.0, bits_per_generation=1 << 16)
    now = 0.0
    for _ in range(200):
        now += rnd.random()
        ephid = rnd.randbytes(16)
        nonce = rnd.randrange(2**32)
        filt.observe(ephid, nonce, now)
        assert not filt.observe(ephid, nonce, now)


def test_replay_filter_key_expires_after_two_rotations():
    window = 10.0
    filt = RotatingReplayFilter(window=window, bits_per_generation=1 << 16)
    ephid, nonce = bytes(16), 7
    assert filt.observe(ephid, nonce, 0.0)
    assert not filt.observe(ephid, nonce, 1.0)
    # Steady background traffic drives the generation rotation.
    rnd = random.Random(1)
    t = 0.0
    while filt.rotations < 2:
        t += 1.0
        filt.observe(rnd.randbytes(16), rnd.randrange(2**32), t)
    # After two full rotations the original key has aged out entirely.
    assert filt.observe(ephid, nonce, t)
