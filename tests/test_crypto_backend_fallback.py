"""Tier-1 coverage for the pure-Python fallback path.

With ``cryptography`` installed, the default backend is ``openssl`` and
the in-process test run exercises mostly that provider.  These tests
force ``REPRO_CRYPTO_BACKEND=pure`` in subprocesses (mirroring
``tests/test_benchmarks_smoke.py``) so the from-scratch implementations
stay pinned by tier-1 even after OpenSSL becomes the default.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = str(REPO / "src")


def _env(backend: str) -> dict:
    env = dict(os.environ)
    env["REPRO_CRYPTO_BACKEND"] = backend
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _run(args: list[str], backend: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, *args],
        cwd=REPO,
        env=_env(backend),
        capture_output=True,
        text=True,
        timeout=600,
    )


def test_env_override_selects_pure():
    result = _run(
        ["-c", "import repro.crypto as c; print(c.active_backend().name)"], "pure"
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip() == "pure"


def test_env_override_rejects_unknown_backend():
    result = _run(["-c", "import repro.crypto"], "enigma")
    assert result.returncode != 0
    assert "enigma" in result.stderr


def test_pure_backend_passes_core_crypto_tests():
    """The from-scratch path stays green: run the vector-pinned crypto
    tests plus the EphID suite in a subprocess forced to ``pure``."""
    result = _run(
        [
            "-m",
            "pytest",
            "-q",
            "-p",
            "no:cacheprovider",
            "tests/test_crypto_aes.py",
            "tests/test_crypto_modes.py",
            "tests/test_crypto_cmac.py",
            "tests/test_crypto_gcm.py",
            "tests/test_core_ephid.py",
        ],
        "pure",
    )
    assert result.returncode == 0, (
        f"pure-backend test run failed\n--- stdout ---\n{result.stdout[-4000:]}"
        f"\n--- stderr ---\n{result.stderr[-2000:]}"
    )
    summary = result.stdout.strip().splitlines()[-1]
    assert "passed" in summary, summary


def test_pure_backend_end_to_end_smoke():
    """A full seal/verify/open round-trip with every facade forced pure."""
    script = (
        "import repro.crypto as c\n"
        "from repro.core.ephid import EphIdCodec\n"
        "assert c.active_backend().name == 'pure'\n"
        "codec = EphIdCodec(bytes(16), bytes(range(16)))\n"
        "info = codec.open(codec.seal(7, 99, 3))\n"
        "assert (info.hid, info.exp_time) == (7, 99)\n"
        "aead = c.new_aead(bytes(32), 'gcm')\n"
        "assert aead.open(bytes(12), aead.seal(bytes(12), b'payload')) == b'payload'\n"
        "pub = c.ed25519.public_key(bytes(32))\n"
        "assert c.ed25519.verify(pub, b'm', c.ed25519.sign(bytes(32), b'm'))\n"
        "print('ok')\n"
    )
    result = _run(["-c", script], "pure")
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip() == "ok"
