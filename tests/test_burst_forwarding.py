"""Burst mode in the simulated delivery loop.

``ApnaConfig.forwarding_batch_size > 1`` switches every border router
node onto the batched verdict pipeline: frames are accumulated, pushed
through ``process_batch`` / ``process_incoming_batch`` when the burst
fills (or the flush window elapses), and acted on in arrival order.
End-to-end traffic must come out identical to per-packet dispatch.
"""

import pytest

from repro.core.config import ApnaConfig
from repro.workload import TrafficProfile

from repro import scenarios
from tests.conftest import build_world


def _batched_config(size, window=0.0002, **kwargs):
    return ApnaConfig(
        forwarding_batch_size=size, forwarding_batch_window=window, **kwargs
    )


def _exchange(world):
    """One alice->bob request/response round trip; returns bob's inbox."""
    alice = world.hosts["alice"]
    bob = world.hosts["bob"]
    bob.listen(80, lambda session, transport, data: bob.send_data(
        session, b"OK " + data, dst_port=transport.src_port
    ))
    serving = bob.acquire_ephid_direct()
    alice.connect(serving.cert, early_data=b"hello", dst_port=80)
    world.network.run()
    return alice, bob


class TestBorderRouterNodeBursts:
    def test_end_to_end_session_under_burst_mode(self):
        world = build_world(config=_batched_config(8))
        alice, bob = _exchange(world)
        assert len(alice.inbox) == 1
        _, _, data = alice.inbox[0]
        assert data == b"OK hello"

    def test_partial_burst_drains_via_flush_timer(self):
        # A single packet never fills an 64-packet burst; the window
        # timer must flush it (otherwise the session would hang).
        world = build_world(config=_batched_config(64, window=0.01))
        alice, _ = _exchange(world)
        assert len(alice.inbox) == 1
        assert world.as_a.node.bursts_flushed > 0

    def test_burst_counters(self):
        world = build_world(config=_batched_config(4))
        _exchange(world)
        node = world.as_a.node
        assert node.bursts_flushed >= 1
        assert 1 <= node.largest_burst <= 4

    def test_scalar_mode_untouched(self):
        world = build_world()  # forwarding_batch_size = 1
        alice, _ = _exchange(world)
        assert len(alice.inbox) == 1
        assert world.as_a.node.bursts_flushed == 0


class TestTrafficProfileBursts:
    def test_burst_traffic_delivers_everything(self):
        world = scenarios.build("fig1", seed=11, config=_batched_config(16))
        report = TrafficProfile(
            clients=3, servers=2, max_flows=60, burst=16
        ).drive(world)
        assert report.flows_offered > 16  # enough arrivals to form bursts
        assert report.payloads_delivered == report.flows_offered
        assert report.delivery_ratio == 1.0
        # The routers really saw multi-packet bursts.
        assert max(
            asys.node.largest_burst for asys in world.ases
        ) > 1

    def test_burst_and_scalar_deliver_the_same_totals(self):
        totals = []
        for batch, burst in ((1, 1), (16, 16)):
            world = scenarios.build(
                "fig1", seed=11, config=_batched_config(batch)
            )
            report = TrafficProfile(
                clients=3, servers=2, max_flows=40, burst=burst
            ).drive(world)
            totals.append(
                (report.flows_offered, report.payloads_delivered,
                 report.responses_received)
            )
        assert totals[0] == totals[1]

    def test_burst_must_be_positive(self):
        world = scenarios.build("fig1", seed=1)
        with pytest.raises(ValueError, match="burst"):
            TrafficProfile(burst=0).drive(world)
