"""Tests for the top-level public API (`repro` and `repro.world`)."""

import pytest

import repro
from repro.core.autonomous_system import ApnaHostNode
from repro.world import (
    TwoAsWorld,
    build_as_chain,
    build_as_star,
    build_transit_stub,
    build_two_as_internet,
)


class TestBuildTwoAsInternet:
    def test_returns_wired_world(self):
        world = build_two_as_internet(seed=1)
        assert isinstance(world, TwoAsWorld)
        assert world.as_a.aid == 100
        assert world.as_b.aid == 200
        assert world.rpki is world.as_a.rpki

    def test_custom_aids(self):
        world = build_two_as_internet(seed=1, aid_a=3320, aid_b=1299)
        assert world.as_a.aid == 3320
        assert world.as_b.aid == 1299

    def test_both_ases_published_to_rpki(self):
        world = build_two_as_internet(seed=1)
        assert world.as_a.aid in world.rpki
        assert world.as_b.aid in world.rpki

    def test_deterministic_for_equal_seeds(self):
        one = build_two_as_internet(seed=42)
        two = build_two_as_internet(seed=42)
        assert one.as_a.keys.signing.public == two.as_a.keys.signing.public

    def test_different_seeds_differ(self):
        one = build_two_as_internet(seed=1)
        two = build_two_as_internet(seed=2)
        assert one.as_a.keys.signing.public != two.as_a.keys.signing.public


class TestAttachHost:
    def test_attaches_bootstrapped_host(self):
        world = build_two_as_internet(seed=3)
        host = world.attach_host("alice", side="a")
        assert isinstance(host, ApnaHostNode)
        assert world.hosts["alice"] is host
        # Bootstrapped: the host can immediately acquire EphIDs.
        owned = host.acquire_ephid_direct()
        assert len(owned.ephid) == 16

    def test_side_b(self):
        world = build_two_as_internet(seed=3)
        host = world.attach_host("bob", side="b")
        assert host.assembly.aid == world.as_b.aid

    def test_invalid_side_rejected(self):
        world = build_two_as_internet(seed=3)
        with pytest.raises(ValueError):
            world.attach_host("mallory", side="c")

    def test_end_to_end_data_flow(self):
        world = build_two_as_internet(seed=4)
        alice = world.attach_host("alice", side="a")
        bob = world.attach_host("bob", side="b")
        received = []
        bob.listen(80, lambda session, transport, data: received.append(data))
        peer = bob.acquire_ephid_direct()
        alice.connect(peer.cert, early_data=b"hello world", dst_port=80)
        world.network.run()
        assert received == [b"hello world"]


class TestChainTopology:
    def test_chain_aids(self):
        world = build_as_chain(4, seed=1)
        assert [a.aid for a in world.ases] == [100, 200, 300, 400]

    def test_end_to_end_path_crosses_every_as(self):
        world = build_as_chain(4, seed=1)
        assert world.as_path(100, 400) == [100, 200, 300, 400]

    def test_too_short_chain_rejected(self):
        with pytest.raises(ValueError):
            build_as_chain(1)

    def test_data_flows_across_the_chain(self):
        world = build_as_chain(3, seed=2)
        alice = world.attach_host("alice", 100)
        bob = world.attach_host("bob", 300)
        received = []
        bob.listen(80, lambda session, transport, data: received.append(data))
        peer = bob.acquire_ephid_direct()
        alice.connect(peer.cert, early_data=b"across the chain", dst_port=80)
        world.network.run()
        assert received == [b"across the chain"]

    def test_as_by_aid_lookup(self):
        world = build_as_chain(3, seed=1)
        assert world.as_by_aid(200) is world.ases[1]
        with pytest.raises(KeyError):
            world.as_by_aid(999)


class TestStarTopology:
    def test_hub_and_leaves(self):
        world = build_as_star(3, seed=1)
        assert world.ases[0].aid == 1
        assert [a.aid for a in world.ases[1:]] == [100, 200, 300]

    def test_leaf_to_leaf_crosses_hub(self):
        world = build_as_star(3, seed=1)
        assert world.as_path(100, 300) == [100, 1, 300]

    def test_needs_a_leaf(self):
        with pytest.raises(ValueError):
            build_as_star(0)


class TestTransitStubTopology:
    def test_counts(self):
        world = build_transit_stub(3, 2, seed=1)
        assert len(world.ases) == 3 + 6
        assert [a.aid for a in world.ases[:3]] == [1, 2, 3]

    def test_core_is_full_mesh(self):
        world = build_transit_stub(3, 0, seed=1)
        assert world.as_path(1, 3) == [1, 3]  # direct, not via 2

    def test_stub_to_stub_crosses_both_providers(self):
        world = build_transit_stub(2, 1, seed=1)
        assert world.as_path(100, 200) == [100, 1, 2, 200]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            build_transit_stub(0, 1)
        with pytest.raises(ValueError):
            build_transit_stub(1, -1)


class TestPackageSurface:
    def test_version_is_a_string(self):
        assert isinstance(repro.__version__, str)

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_docstring_mentions_the_paper(self):
        assert "CoNEXT 2016" in repro.__doc__
