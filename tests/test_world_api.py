"""Tests for the top-level public API (`repro` and `repro.world`).

`repro.world` is now a deprecation-shim layer over `repro.topology`;
the legacy suites below double as the shim regression tests, and the
classes at the bottom pin the shim<->new-API equivalence.
"""

import pytest

import repro
from repro import scenarios
from repro.core.autonomous_system import ApnaHostNode
from repro.core.errors import ApnaError
from repro.topology import World
from repro.world import (
    MultiAsWorld,
    TwoAsWorld,
    build_as_chain,
    build_as_star,
    build_transit_stub,
    build_two_as_internet,
)


class TestBuildTwoAsInternet:
    def test_returns_wired_world(self):
        world = build_two_as_internet(seed=1)
        assert isinstance(world, TwoAsWorld)
        assert world.as_a.aid == 100
        assert world.as_b.aid == 200
        assert world.rpki is world.as_a.rpki

    def test_custom_aids(self):
        world = build_two_as_internet(seed=1, aid_a=3320, aid_b=1299)
        assert world.as_a.aid == 3320
        assert world.as_b.aid == 1299

    def test_both_ases_published_to_rpki(self):
        world = build_two_as_internet(seed=1)
        assert world.as_a.aid in world.rpki
        assert world.as_b.aid in world.rpki

    def test_deterministic_for_equal_seeds(self):
        one = build_two_as_internet(seed=42)
        two = build_two_as_internet(seed=42)
        assert one.as_a.keys.signing.public == two.as_a.keys.signing.public

    def test_different_seeds_differ(self):
        one = build_two_as_internet(seed=1)
        two = build_two_as_internet(seed=2)
        assert one.as_a.keys.signing.public != two.as_a.keys.signing.public


class TestAttachHost:
    def test_attaches_bootstrapped_host(self):
        world = build_two_as_internet(seed=3)
        host = world.attach_host("alice", side="a")
        assert isinstance(host, ApnaHostNode)
        assert world.hosts["alice"] is host
        # Bootstrapped: the host can immediately acquire EphIDs.
        owned = host.acquire_ephid_direct()
        assert len(owned.ephid) == 16

    def test_side_b(self):
        world = build_two_as_internet(seed=3)
        host = world.attach_host("bob", side="b")
        assert host.assembly.aid == world.as_b.aid

    def test_invalid_side_rejected(self):
        world = build_two_as_internet(seed=3)
        with pytest.raises(ValueError):
            world.attach_host("mallory", side="c")

    def test_end_to_end_data_flow(self):
        world = build_two_as_internet(seed=4)
        alice = world.attach_host("alice", side="a")
        bob = world.attach_host("bob", side="b")
        received = []
        bob.listen(80, lambda session, transport, data: received.append(data))
        peer = bob.acquire_ephid_direct()
        alice.connect(peer.cert, early_data=b"hello world", dst_port=80)
        world.network.run()
        assert received == [b"hello world"]


class TestChainTopology:
    def test_chain_aids(self):
        world = build_as_chain(4, seed=1)
        assert [a.aid for a in world.ases] == [100, 200, 300, 400]

    def test_end_to_end_path_crosses_every_as(self):
        world = build_as_chain(4, seed=1)
        assert world.as_path(100, 400) == [100, 200, 300, 400]

    def test_too_short_chain_rejected(self):
        with pytest.raises(ValueError):
            build_as_chain(1)

    def test_data_flows_across_the_chain(self):
        world = build_as_chain(3, seed=2)
        alice = world.attach_host("alice", 100)
        bob = world.attach_host("bob", 300)
        received = []
        bob.listen(80, lambda session, transport, data: received.append(data))
        peer = bob.acquire_ephid_direct()
        alice.connect(peer.cert, early_data=b"across the chain", dst_port=80)
        world.network.run()
        assert received == [b"across the chain"]

    def test_as_by_aid_lookup(self):
        world = build_as_chain(3, seed=1)
        assert world.as_by_aid(200) is world.ases[1]
        with pytest.raises(KeyError):
            world.as_by_aid(999)


class TestStarTopology:
    def test_hub_and_leaves(self):
        world = build_as_star(3, seed=1)
        assert world.ases[0].aid == 1
        assert [a.aid for a in world.ases[1:]] == [100, 200, 300]

    def test_leaf_to_leaf_crosses_hub(self):
        world = build_as_star(3, seed=1)
        assert world.as_path(100, 300) == [100, 1, 300]

    def test_needs_a_leaf(self):
        with pytest.raises(ValueError):
            build_as_star(0)


class TestTransitStubTopology:
    def test_counts(self):
        world = build_transit_stub(3, 2, seed=1)
        assert len(world.ases) == 3 + 6
        assert [a.aid for a in world.ases[:3]] == [1, 2, 3]

    def test_core_is_full_mesh(self):
        world = build_transit_stub(3, 0, seed=1)
        assert world.as_path(1, 3) == [1, 3]  # direct, not via 2

    def test_stub_to_stub_crosses_both_providers(self):
        world = build_transit_stub(2, 1, seed=1)
        assert world.as_path(100, 200) == [100, 1, 2, 200]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            build_transit_stub(0, 1)
        with pytest.raises(ValueError):
            build_transit_stub(1, -1)


class TestDeprecationShims:
    def test_builders_warn(self):
        with pytest.warns(DeprecationWarning, match="scenarios"):
            build_two_as_internet(seed=1)
        with pytest.warns(DeprecationWarning):
            build_as_chain(2, seed=1)
        with pytest.warns(DeprecationWarning):
            build_as_star(1, seed=1)
        with pytest.warns(DeprecationWarning):
            build_transit_stub(1, 1, seed=1)

    def test_old_worlds_are_worlds(self):
        assert issubclass(TwoAsWorld, World)
        assert issubclass(MultiAsWorld, World)
        assert isinstance(build_two_as_internet(seed=1), World)
        assert isinstance(build_as_chain(2, seed=1), World)

    def test_fig1_preset_equals_old_builder(self):
        old = build_two_as_internet(seed=42)
        new = scenarios.build("fig1", seed=42)
        assert old.as_a.keys.signing.public == new.as_a.keys.signing.public
        assert old.as_b.keys.signing.public == new.as_b.keys.signing.public
        assert [a.aid for a in old.ases] == [a.aid for a in new.ases]

    def test_chain_preset_equals_old_builder(self):
        old = build_as_chain(3, seed=7)
        new = scenarios.build("chain:3", seed=7)
        assert [a.aid for a in old.ases] == [a.aid for a in new.ases]
        assert [
            a.keys.signing.public for a in old.ases
        ] == [a.keys.signing.public for a in new.ases]

    def test_transit_stub_preset_equals_old_builder(self):
        old = build_transit_stub(2, 2, seed=3)
        new = scenarios.build("transit-stub:2x2", seed=3)
        assert [
            a.keys.signing.public for a in old.ases
        ] == [a.keys.signing.public for a in new.ases]

    def test_fig1_quickstart_flow_matches_old_builder(self):
        """The acceptance bar: identical session outcomes on both paths."""

        def flow(world, a_ref, b_ref):
            alice = world.attach_host("alice", **{a_ref[0]: a_ref[1]})
            bob = world.attach_host("bob", **{b_ref[0]: b_ref[1]})
            received = []
            bob.listen(80, lambda s, t, d: received.append(d))
            ephid = bob.acquire_ephid_direct()
            session = alice.connect(ephid.cert, early_data=b"hi", dst_port=80)
            world.network.run()
            return ephid.ephid, session.key, received

        old = flow(build_two_as_internet(seed=7), ("side", "a"), ("side", "b"))
        new = flow(scenarios.build("fig1", seed=7), ("at", "a"), ("at", "b"))
        assert old == new

    def test_two_as_world_duplicate_host_rejected(self):
        world = build_two_as_internet(seed=1)
        world.attach_host("alice", side="a")
        with pytest.raises(ApnaError):
            world.attach_host("alice", side="b")
        assert world.hosts["alice"].assembly.aid == 100  # not overwritten

    def test_multi_as_world_duplicate_host_rejected(self):
        world = build_as_chain(2, seed=1)
        world.attach_host("alice", 100)
        with pytest.raises(ApnaError):
            world.attach_host("alice", 200)

    def test_old_worlds_accept_new_addressing_too(self):
        two = build_two_as_internet(seed=1)
        assert two.attach_host("h1", at="b").assembly.aid == 200
        multi = build_as_chain(2, seed=1)
        assert multi.attach_host("h2", at=200).assembly.aid == 200

    def test_conflicting_old_and_new_addressing_rejected(self):
        two = build_two_as_internet(seed=1)
        with pytest.raises(ValueError, match="not both"):
            two.attach_host("h1", side="a", at="b")
        multi = build_as_chain(2, seed=1)
        with pytest.raises(ValueError, match="not both"):
            multi.attach_host("h2", 100, at=200)

    def test_unknown_aid_message_lists_known_ases(self):
        world = build_as_chain(2, seed=1)
        with pytest.raises(KeyError, match="known ASes"):
            world.as_by_aid(999)


class TestPackageSurface:
    def test_version_is_a_string(self):
        assert isinstance(repro.__version__, str)

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_new_api_exported_at_the_root(self):
        for name in (
            "World",
            "WorldBuilder",
            "TopologySpec",
            "TrafficProfile",
            "scenarios",
        ):
            assert name in repro.__all__

    def test_docstring_mentions_the_paper(self):
        assert "CoNEXT 2016" in repro.__doc__

    def test_quickstart_docs_use_the_scenario_api(self):
        assert 'scenarios.build("fig1"' in repro.__doc__
        assert "repro.scenarios" in repro.__doc__
