"""Tests for the discrete-event network simulator substrate."""

import pytest

from repro.netsim import Network, Node, Scheduler


class Recorder(Node):
    """Test node that records every frame with its arrival time."""

    def __init__(self, name):
        super().__init__(name)
        self.received: list[tuple[float, str, bytes]] = []

    def handle_frame(self, frame, *, from_node):
        self.received.append((self.now, from_node, frame))


class Forwarder(Node):
    """Test node that relays every frame to a fixed next hop."""

    def __init__(self, name, next_node):
        super().__init__(name)
        self.next_node = next_node

    def handle_frame(self, frame, *, from_node):
        self.send(self.next_node, frame)


class TestScheduler:
    def test_events_run_in_time_order(self):
        sched = Scheduler()
        order = []
        sched.schedule(2.0, order.append, "b")
        sched.schedule(1.0, order.append, "a")
        sched.schedule(3.0, order.append, "c")
        sched.run()
        assert order == ["a", "b", "c"]
        assert sched.now == 3.0

    def test_ties_break_by_insertion_order(self):
        sched = Scheduler()
        order = []
        for tag in "abc":
            sched.schedule(1.0, order.append, tag)
        sched.run()
        assert order == ["a", "b", "c"]

    def test_cancel(self):
        sched = Scheduler()
        fired = []
        handle = sched.schedule(1.0, fired.append, "x")
        handle.cancel()
        assert handle.cancelled
        sched.run()
        assert fired == []

    def test_run_until_stops_and_advances(self):
        sched = Scheduler()
        fired = []
        sched.schedule(1.0, fired.append, 1)
        sched.schedule(5.0, fired.append, 5)
        sched.run_until(2.0)
        assert fired == [1]
        assert sched.now == 2.0
        sched.run()
        assert fired == [1, 5]

    def test_nested_scheduling(self):
        sched = Scheduler()
        times = []

        def tick(remaining):
            times.append(sched.now)
            if remaining:
                sched.schedule(1.0, tick, remaining - 1)

        sched.schedule(0.0, tick, 3)
        sched.run()
        assert times == [0.0, 1.0, 2.0, 3.0]

    def test_rejects_past_scheduling(self):
        sched = Scheduler(start=10.0)
        with pytest.raises(ValueError):
            sched.schedule(-1.0, lambda: None)
        with pytest.raises(ValueError):
            sched.schedule_at(5.0, lambda: None)

    def test_event_budget_guard(self):
        sched = Scheduler()

        def forever():
            sched.schedule(0.0, forever)

        sched.schedule(0.0, forever)
        with pytest.raises(RuntimeError):
            sched.run(max_events=100)

    def test_clock_callable(self):
        sched = Scheduler()
        clock = sched.clock()
        sched.schedule(4.0, lambda: None)
        sched.run()
        assert clock() == 4.0


class TestLinksAndNodes:
    def test_latency_delivery(self):
        net = Network()
        a, b = net.add_node(Recorder("a")), net.add_node(Recorder("b"))
        net.connect(a, b, latency=0.010, bandwidth=1e12)
        a.send("b", b"hello")
        net.run()
        assert len(b.received) == 1
        arrival, from_node, frame = b.received[0]
        assert frame == b"hello"
        assert from_node == "a"
        assert arrival == pytest.approx(0.010, rel=1e-6)

    def test_serialization_delay(self):
        net = Network()
        a, b = net.add_node(Recorder("a")), net.add_node(Recorder("b"))
        # 1 Mbps: a 1250-byte frame takes 10 ms to serialize.
        net.connect(a, b, latency=0.0, bandwidth=1e6)
        a.send("b", bytes(1250))
        net.run()
        assert b.received[0][0] == pytest.approx(0.010, rel=1e-6)

    def test_fifo_backlog(self):
        net = Network()
        a, b = net.add_node(Recorder("a")), net.add_node(Recorder("b"))
        net.connect(a, b, latency=0.0, bandwidth=1e6)
        for _ in range(3):
            a.send("b", bytes(1250))  # 10 ms each
        net.run()
        arrivals = [t for t, _, _ in b.received]
        assert arrivals == pytest.approx([0.010, 0.020, 0.030], rel=1e-6)

    def test_queue_overflow_drops(self):
        net = Network()
        a, b = net.add_node(Recorder("a")), net.add_node(Recorder("b"))
        link = net.connect(a, b, latency=0.0, bandwidth=1e3)  # 8 s per KB frame
        link.queue_limit = 10.0
        results = [a.send("b", bytes(1000)) for _ in range(4)]
        assert results == [True, True, False, False]
        net.run()
        assert len(b.received) == 2

    def test_bidirectional_independence(self):
        net = Network()
        a, b = net.add_node(Recorder("a")), net.add_node(Recorder("b"))
        net.connect(a, b, latency=0.0, bandwidth=1e6)
        a.send("b", bytes(1250))
        b.send("a", bytes(1250))
        net.run()
        # Directions do not share the transmitter.
        assert a.received[0][0] == pytest.approx(0.010, rel=1e-6)
        assert b.received[0][0] == pytest.approx(0.010, rel=1e-6)

    def test_send_to_unknown_neighbor(self):
        net = Network()
        a = net.add_node(Recorder("a"))
        with pytest.raises(ValueError):
            a.send("nowhere", b"frame")

    def test_duplicate_node_name_rejected(self):
        net = Network()
        net.add_node(Recorder("a"))
        with pytest.raises(ValueError):
            net.add_node(Recorder("a"))

    def test_multi_hop_forwarding(self):
        net = Network()
        src = net.add_node(Recorder("src"))
        mid = net.add_node(Forwarder("mid", "dst"))
        dst = net.add_node(Recorder("dst"))
        net.connect(src, mid, latency=0.005, bandwidth=1e12)
        net.connect(mid, dst, latency=0.005, bandwidth=1e12)
        src.send("mid", b"payload")
        net.run()
        assert dst.received[0][0] == pytest.approx(0.010, rel=1e-6)
        assert dst.received[0][2] == b"payload"


class TestRouting:
    def build_triangle(self):
        net = Network()
        for name in "abc":
            net.add_node(Recorder(name))
        net.connect("a", "b", latency=0.001)
        net.connect("b", "c", latency=0.001)
        net.connect("a", "c", latency=0.010)
        return net

    def test_next_hop_prefers_low_latency(self):
        net = self.build_triangle()
        # a->c direct costs 10 ms; via b costs 2 ms.
        assert net.next_hop("a", "c") == "b"
        assert net.next_hop("b", "c") == "c"

    def test_path(self):
        net = self.build_triangle()
        assert net.path("a", "c") == ["a", "b", "c"]

    def test_no_route_raises(self):
        net = Network()
        net.add_node(Recorder("a"))
        net.add_node(Recorder("island"))
        with pytest.raises(ValueError):
            net.next_hop("a", "island")

    def test_routes_recomputed_after_new_link(self):
        net = self.build_triangle()
        assert net.next_hop("a", "c") == "b"
        d = net.add_node(Recorder("d"))
        net.connect("a", "d", latency=0.0001)
        net.connect("d", "c", latency=0.0001)
        assert net.next_hop("a", "c") == "d"
