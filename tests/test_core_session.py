"""Tests for sessions (IV-D1), PFS (VI-B), replay windows and handshake
messages (VII-A)."""

import pytest

from repro.core.certs import EphIdCertificate
from repro.core.errors import ApnaError, CertError
from repro.core.keys import EphIdKeyPair, SigningKeyPair
from repro.core.replay import ReplayWindow
from repro.core.session import (
    ConnectionAccept,
    ConnectionRequest,
    OwnedEphId,
    Session,
    SessionError,
    derive_session_key,
)
from repro.crypto.rng import DeterministicRng


def make_owned(rng, signer, *, flags=0, ephid=None):
    keypair = EphIdKeyPair.generate(rng)
    cert = EphIdCertificate.issue(
        signer,
        ephid=ephid or rng.read(16),
        exp_time=10**9,
        dh_public=keypair.exchange.public,
        sig_public=keypair.signing.public,
        aid=100,
        aa_ephid=rng.read(16),
        flags=flags,
    )
    return OwnedEphId(cert=cert, keypair=keypair)


@pytest.fixture()
def pair():
    rng = DeterministicRng(42)
    signer = SigningKeyPair.generate(rng)
    a = make_owned(rng, signer)
    b = make_owned(rng, signer)
    return a, b


class TestKeyDerivation:
    def test_both_sides_derive_same_key(self, pair):
        a, b = pair
        ka = derive_session_key(a.keypair, b.cert.dh_public, a.ephid, b.ephid)
        kb = derive_session_key(b.keypair, a.cert.dh_public, b.ephid, a.ephid)
        assert ka == kb

    def test_key_bound_to_ephid_pair(self, pair):
        a, b = pair
        k1 = derive_session_key(a.keypair, b.cert.dh_public, a.ephid, b.ephid)
        k2 = derive_session_key(a.keypair, b.cert.dh_public, a.ephid, bytes(16))
        assert k1 != k2

    def test_pfs_key_independent_of_long_term_keys(self, pair):
        # The session key derives only from the EphID key pairs; no AS or
        # host long-term key enters the derivation (Section VI-B).  Two
        # sessions between the same hosts with fresh EphIDs get unrelated
        # keys.
        rng = DeterministicRng(43)
        signer = SigningKeyPair.generate(rng)
        a1, b1 = make_owned(rng, signer), make_owned(rng, signer)
        a2, b2 = make_owned(rng, signer), make_owned(rng, signer)
        k1 = derive_session_key(a1.keypair, b1.cert.dh_public, a1.ephid, b1.ephid)
        k2 = derive_session_key(a2.keypair, b2.cert.dh_public, a2.ephid, b2.ephid)
        assert k1 != k2


class TestSession:
    def test_bidirectional_exchange(self, pair):
        a, b = pair
        sa = Session(a, b.cert)
        sb = Session(b, a.cert)
        assert sb.open(sa.seal(b"hello from a")) == b"hello from a"
        assert sa.open(sb.seal(b"hello from b")) == b"hello from b"
        assert sa.sent == 1 and sa.received == 1

    def test_many_messages_in_order(self, pair):
        a, b = pair
        sa, sb = Session(a, b.cert), Session(b, a.cert)
        for i in range(20):
            assert sb.open(sa.seal(f"msg-{i}".encode())) == f"msg-{i}".encode()

    def test_replayed_payload_rejected(self, pair):
        a, b = pair
        sa, sb = Session(a, b.cert), Session(b, a.cert)
        payload = sa.seal(b"once")
        sb.open(payload)
        with pytest.raises(SessionError):
            sb.open(payload)

    def test_tampered_payload_rejected(self, pair):
        a, b = pair
        sa, sb = Session(a, b.cert), Session(b, a.cert)
        payload = bytearray(sa.seal(b"data"))
        payload[-1] ^= 1
        with pytest.raises(SessionError):
            sb.open(bytes(payload))

    def test_direction_separation(self, pair):
        # A sender cannot be reflected its own packets.
        a, b = pair
        sa, sb = Session(a, b.cert), Session(b, a.cert)
        payload = sa.seal(b"to b")
        with pytest.raises(SessionError):
            sa.open(payload)

    def test_cross_session_splicing_rejected(self, pair):
        rng = DeterministicRng(44)
        signer = SigningKeyPair.generate(rng)
        a, b = pair
        c = make_owned(rng, signer)
        sa_b = Session(a, b.cert)
        # c pretends a's ciphertext belongs to the (a, c) session.
        sc = Session(c, a.cert)
        with pytest.raises(SessionError):
            sc.open(sa_b.seal(b"for b only"))

    def test_gcm_scheme_interoperates(self, pair):
        a, b = pair
        sa = Session(a, b.cert, scheme="gcm")
        sb = Session(b, a.cert, scheme="gcm")
        assert sb.open(sa.seal(b"gcm data")) == b"gcm data"

    def test_short_payload_rejected(self, pair):
        a, b = pair
        sb = Session(b, a.cert)
        with pytest.raises(SessionError):
            sb.open(b"short")


class TestReplayWindow:
    def test_fresh_values_accepted(self):
        window = ReplayWindow(8)
        assert all(window.check(i) for i in range(10))
        assert window.accepted == 10

    def test_duplicates_rejected(self):
        window = ReplayWindow(8)
        window.check(5)
        assert not window.check(5)
        assert window.rejected == 1

    def test_out_of_order_within_window_accepted(self):
        window = ReplayWindow(8)
        window.check(10)
        assert window.check(7)
        assert not window.check(7)

    def test_stale_rejected(self):
        window = ReplayWindow(8)
        window.check(100)
        assert not window.check(91)  # 100 - 8 = 92 is the floor
        assert window.check(93)

    def test_negative_rejected(self):
        assert not ReplayWindow().check(-1)

    def test_window_eviction_bounds_memory(self):
        window = ReplayWindow(16)
        for i in range(10_000):
            window.check(i)
        assert len(window._seen) <= 32 + 1

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            ReplayWindow(0)


class TestHandshakeMessages:
    def test_connection_request_roundtrip(self, pair):
        a, _ = pair
        request = ConnectionRequest(cert=a.cert, early_data=b"\x01\x02\x03")
        parsed = ConnectionRequest.parse(request.pack())
        assert parsed.cert == a.cert
        assert parsed.early_data == b"\x01\x02\x03"

    def test_connection_request_empty_early_data(self, pair):
        a, _ = pair
        parsed = ConnectionRequest.parse(ConnectionRequest(cert=a.cert).pack())
        assert parsed.early_data == b""

    def test_connection_request_truncated(self, pair):
        a, _ = pair
        wire = ConnectionRequest(cert=a.cert, early_data=b"abc").pack()
        with pytest.raises(CertError):
            ConnectionRequest.parse(wire[:-1])

    def test_connection_accept_roundtrip(self, pair):
        _, b = pair
        accept = ConnectionAccept(serving_cert=b.cert, data=b"greeting")
        parsed = ConnectionAccept.parse(accept.pack())
        assert parsed.serving_cert == b.cert
        assert parsed.data == b"greeting"


class TestReceiveOnlyGuard:
    def test_stack_refuses_receive_only_source(self, world):
        from repro.core.certs import FLAG_RECEIVE_ONLY

        alice = world.hosts["alice"]
        bob_owned = world.hosts["bob"].acquire_ephid_direct()
        ro = alice.acquire_ephid_direct(flags=FLAG_RECEIVE_ONLY)
        with pytest.raises(ApnaError):
            alice.stack.open_session(ro, bob_owned.cert)
