"""Regression audit: shard routing is computed in exactly one place.

PR 8 closed the IV-residue linkage leak: the dispatcher no longer routes
by the publicly computable ``iv % nshards`` residue but by a PRF-keyed
map owned by :class:`repro.sharding.plan.ShardPlan`.  The leak only
stays closed if nothing *else* quietly reintroduces residue arithmetic
— a future "fast path" that mods a clear IV by the shard count would
hand observers log2(nshards) linkage bits again, silently, with every
test still green (the map is still a valid partition).

Since PR 9 the walk itself lives in :mod:`repro.analysis` as the
``shard-routing-mod`` rule (so it runs under the unified analyzer with
suppressions and a baseline); this file remains as the historical
tier-1 anchor — a thin wrapper that pins the rule's scope and proves
the detector still fires on the pre-PR-8 idiom.

Deliberately *not* audited: ``state/view.py`` and ``state/columns.py``
use ``blk % nshards`` for HID-block *ownership* (which rows a shard
stores) — that is keyed on the secret HID, not on clear packet bytes,
and is not a routing decision an observer can replay.
"""

from repro.analysis import RULES, Module, run_analysis
from repro.analysis.engine import DEFAULT_ROOT

RULE = RULES["shard-routing-mod"]


def test_audited_files_exist():
    for pattern in RULE.scope:
        matches = sorted(DEFAULT_ROOT.glob(pattern))
        assert matches, f"audited scope matches nothing: {pattern}"
    # plan.py is the one module allowed to hold routing arithmetic.
    assert (DEFAULT_ROOT / "sharding" / "plan.py").is_file()
    assert not RULE.applies_to("sharding/plan.py")
    # The HID-block ownership arithmetic stays out of scope on purpose.
    assert not RULE.applies_to("state/view.py")
    assert not RULE.applies_to("state/columns.py")


def test_plan_is_the_only_router():
    report = run_analysis(rules=["shard-routing-mod"], baseline=set())
    assert not report.findings, (
        "shard-count modulo outside ShardPlan — route via "
        "plan.owner_of_iv*/owners_of_iv_bytes instead:\n  "
        + "\n  ".join(f.render() for f in report.findings)
    )


def test_audit_catches_residue_routing():
    """The detector itself must fire on the pre-PR-8 idiom."""
    bad = "def shard_of(iv, nshards):\n    return iv % nshards\n"
    module = Module.from_source(bad, "sharding/fixture.py")
    assert list(RULE.check_module(module)), (
        "audit no longer detects iv % nshards routing"
    )
