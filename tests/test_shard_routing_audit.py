"""Regression audit: shard routing is computed in exactly one place.

PR 8 closed the IV-residue linkage leak: the dispatcher no longer routes
by the publicly computable ``iv % nshards`` residue but by a PRF-keyed
map owned by :class:`repro.sharding.plan.ShardPlan`.  The leak only
stays closed if nothing *else* quietly reintroduces residue arithmetic
— a future "fast path" that mods a clear IV by the shard count would
hand observers log2(nshards) linkage bits again, silently, with every
test still green (the map is still a valid partition).

So this audit walks the ASTs of every module on the dispatch/allocation
path and flags any ``%`` whose modulus names a shard count.  Routing
arithmetic is allowed only inside ``plan.py``; everyone else must go
through ``ShardPlan.owner_of_iv*`` / ``owners_of_iv_bytes``.

Deliberately *not* audited: ``state/view.py`` and ``state/columns.py``
use ``blk % nshards`` for HID-block *ownership* (which rows a shard
stores) — that is keyed on the secret HID, not on clear packet bytes,
and is not a routing decision an observer can replay.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Everything that sees clear IV bytes and a shard count.  ``plan.py``
#: is the one module allowed to turn one into the other.
AUDITED = sorted(
    p for p in (SRC / "sharding").glob("*.py") if p.name != "plan.py"
) + [
    SRC / "core" / "ephid.py",
    SRC / "core" / "border_router.py",
    SRC / "core" / "autonomous_system.py",
]

#: Identifier substrings that mark a modulus as a shard count.
SHARD_TOKENS = ("nshards", "num_shards", "shard_count", "n_shards")


def _names_shard_count(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        name = node.id.lower()
    elif isinstance(node, ast.Attribute):
        name = node.attr.lower()
    else:
        # Constants (``% 2**32`` wraparound) and calls are fine: the
        # leak class is specifically reduction modulo the shard count.
        return False
    return any(token in name for token in SHARD_TOKENS)


def _violations(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    found = []
    for node in ast.walk(tree):
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
            if _names_shard_count(node.right):
                found.append(
                    f"{path.relative_to(SRC.parent.parent)}:{node.lineno}"
                )
    return found


def test_audited_files_exist():
    for path in AUDITED:
        assert path.is_file(), f"audited module moved or deleted: {path}"


def test_plan_is_the_only_router():
    violations = [v for path in AUDITED for v in _violations(path)]
    assert not violations, (
        "shard-count modulo outside ShardPlan — route via "
        "plan.owner_of_iv*/owners_of_iv_bytes instead:\n  "
        + "\n  ".join(violations)
    )


def test_audit_catches_residue_routing():
    """The detector itself must fire on the pre-PR-8 idiom."""
    bad = "def shard_of(iv, nshards):\n    return iv % nshards\n"
    tree = ast.parse(bad)
    hits = [
        n
        for n in ast.walk(tree)
        if isinstance(n, ast.BinOp)
        and isinstance(n.op, ast.Mod)
        and _names_shard_count(n.right)
    ]
    assert hits, "audit no longer detects iv % nshards routing"
