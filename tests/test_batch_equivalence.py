"""Batch/scalar equivalence of the border router's burst pipeline.

The contract (see :mod:`repro.core.border_router`): for any packet list,
``process_batch`` / ``process_incoming_batch`` return exactly the
verdicts the scalar loop returns and leave the router in the identical
state — same drop counters, same forwarded counters, same replay-filter
statistics.  A seeded fuzzer mixes every verdict class (forged, expired,
revoked, bad-MAC, replayed, transit, intra, foreign-source) into random
bursts and checks the property under both crypto backends.
"""

import dataclasses
import random

import pytest

from repro.core.border_router import Action, BorderRouter, DropReason
from repro.core.config import ApnaConfig
from repro.core.ephid import EphIdCodec
from repro.core.replay_filter import RotatingReplayFilter
from repro.crypto import backend as crypto_backend
from repro.wire.apna import Endpoint

from tests.conftest import build_world

BACKENDS = crypto_backend.available_backends()
#: The columnar and object state stores must be indistinguishable to the
#: batch pipeline (see repro.state).
STATE_BACKENDS = ("object", "columnar")

WINDOW = 900.0
BITS = 1 << 14


@pytest.fixture(
    params=[(c, s) for c in BACKENDS for s in STATE_BACKENDS],
    ids=lambda p: f"{p[0]}-{p[1]}",
)
def burst_world(request):
    """A replay-protected world pinned to one crypto backend and one
    state backend."""
    crypto, state_backend = request.param
    with crypto_backend.use_backend(crypto):
        world = build_world(
            config=ApnaConfig(
                replay_protection=True,
                in_network_replay_filter=True,
                replay_filter_window=WINDOW,
                replay_filter_bits=BITS,
                state_backend=state_backend,
            ),
            host_names=("alice", "bob", "carol"),  # alice, carol on AS 100
        )
        world.crypto_backend = crypto
    return world


def _fresh_router(world):
    return BorderRouter(
        world.as_a.aid,
        world.as_a.codec,
        world.as_a.hostdb,
        world.as_a.revocations,
        world.network.scheduler.clock(),
        packet_mac_size=world.config.packet_mac_size,
        replay_filter=RotatingReplayFilter(
            window=WINDOW, bits_per_generation=BITS
        ),
    )


def _filter_stats(router):
    filt = router.replay_filter
    return (filt.passed, filt.replays, filt.rotations)


def _assert_same_state(scalar_router, batch_router):
    assert scalar_router.drops == batch_router.drops
    assert scalar_router.forwarded_inter == batch_router.forwarded_inter
    assert scalar_router.forwarded_intra == batch_router.forwarded_intra
    assert _filter_stats(scalar_router) == _filter_stats(batch_router)


def _packet_mix(world, rng):
    """A generator of packets drawn from every verdict class."""
    with crypto_backend.use_backend(world.crypto_backend):
        alice = world.hosts["alice"]
        carol = world.hosts["carol"]
        bob = world.hosts["bob"]
        src = alice.acquire_ephid_direct()
        peer = bob.acquire_ephid_direct()
        local_peer = carol.acquire_ephid_direct()
        revoked = alice.acquire_ephid_direct()
        world.as_a.revocations.add(revoked.ephid, 1e12)
        revoked_dst = carol.acquire_ephid_direct()
        world.as_a.revocations.add(revoked_dst.ephid, 1e12)
        # Crafted EphIDs: expired and unknown-HID, sealed under the AS key
        # so they authenticate but fail the later checks.
        codec = world.as_a.codec
        alice_hid = world.as_a.hostdb.find_by_subscriber(alice.subscriber_id).hid
        expired_ephid = codec.seal(alice_hid, exp_time=1, iv=world.as_a.ivs.next_iv())
        bad_hid_ephid = codec.seal(0xDEAD, exp_time=2**31, iv=world.as_a.ivs.next_iv())

    dst_inter = Endpoint(world.as_b.aid, peer.ephid)
    dst_intra = Endpoint(world.as_a.aid, local_peer.ephid)
    nonces = iter(range(1, 10**6))
    seen = []

    def build(kind):
        make = alice.stack.make_packet
        if kind == "inter":
            packet = make(src.ephid, dst_inter, b"data", nonce=next(nonces))
            seen.append(packet)
            return packet
        if kind == "intra":
            packet = make(src.ephid, dst_intra, b"data", nonce=next(nonces))
            seen.append(packet)
            return packet
        if kind == "replay" and seen:
            return rng.choice(seen)
        if kind == "forged":
            packet = make(src.ephid, dst_inter, b"data", nonce=next(nonces))
            return dataclasses.replace(
                packet,
                header=dataclasses.replace(
                    packet.header, src_ephid=rng.randbytes(16)
                ),
            )
        if kind == "expired":
            return make(expired_ephid, dst_inter, b"data", nonce=next(nonces))
        if kind == "revoked":
            return make(revoked.ephid, dst_inter, b"data", nonce=next(nonces))
        if kind == "bad-hid":
            return make(bad_hid_ephid, dst_inter, b"data", nonce=next(nonces))
        if kind == "bad-mac":
            packet = make(src.ephid, dst_inter, b"data", nonce=next(nonces))
            return dataclasses.replace(
                packet, header=packet.header.with_mac(b"\xff" * 8)
            )
        if kind == "foreign":
            packet = make(src.ephid, dst_inter, b"data", nonce=next(nonces))
            return dataclasses.replace(
                packet, header=dataclasses.replace(packet.header, src_aid=999)
            )
        if kind == "revoked-dst":
            return make(
                src.ephid,
                Endpoint(world.as_a.aid, revoked_dst.ephid),
                b"data",
                nonce=next(nonces),
            )
        if kind == "forged-dst":
            return make(
                src.ephid,
                Endpoint(world.as_a.aid, rng.randbytes(16)),
                b"data",
                nonce=next(nonces),
            )
        # Fallback (e.g. "replay" before any packet exists).
        packet = make(src.ephid, dst_inter, b"data", nonce=next(nonces))
        seen.append(packet)
        return packet

    return build


KINDS = (
    "inter", "inter", "inter", "intra", "replay", "forged", "expired",
    "revoked", "bad-hid", "bad-mac", "foreign", "revoked-dst", "forged-dst",
)


class TestEgressEquivalence:
    def test_fuzzed_bursts(self, burst_world):
        # Advance virtual time so the crafted exp_time=1 EphID is expired.
        burst_world.network.run_until(5.0)
        rng = random.Random(0xA9A)
        build = _packet_mix(burst_world, rng)
        scalar_router = _fresh_router(burst_world)
        batch_router = _fresh_router(burst_world)
        for _ in range(6):
            burst = [build(rng.choice(KINDS)) for _ in range(rng.randint(1, 48))]
            scalar = [scalar_router.process_outgoing(p) for p in burst]
            batched = batch_router.process_batch(list(burst))
            assert scalar == batched
            _assert_same_state(scalar_router, batch_router)
        # Every verdict class must actually have been exercised.
        hits = {r for r, n in batch_router.drops.items() if n}
        assert {
            DropReason.SRC_FORGED, DropReason.SRC_EXPIRED,
            DropReason.SRC_REVOKED, DropReason.SRC_HID_INVALID,
            DropReason.BAD_MAC, DropReason.REPLAYED,
            DropReason.NOT_LOCAL_SOURCE, DropReason.DST_REVOKED,
            DropReason.DST_FORGED,
        } <= hits
        assert batch_router.forwarded_inter > 0
        assert batch_router.forwarded_intra > 0

    def test_duplicate_nonce_inside_one_burst(self, burst_world):
        rng = random.Random(7)
        build = _packet_mix(burst_world, rng)
        packet = build("inter")
        scalar_router = _fresh_router(burst_world)
        batch_router = _fresh_router(burst_world)
        burst = [packet, packet, packet]
        scalar = [scalar_router.process_outgoing(p) for p in burst]
        batched = batch_router.process_batch(list(burst))
        assert scalar == batched
        assert batched[0].action is Action.FORWARD_INTER
        assert batched[1].reason is DropReason.REPLAYED
        assert batched[2].reason is DropReason.REPLAYED
        _assert_same_state(scalar_router, batch_router)

    def test_empty_burst(self, burst_world):
        router = _fresh_router(burst_world)
        assert router.process_batch([]) == []
        assert router.process_incoming_batch([]) == []
        assert router.total_drops == 0


class TestIngressEquivalence:
    def test_fuzzed_bursts(self, burst_world):
        burst_world.network.run_until(5.0)
        rng = random.Random(0xB0B)
        build = _packet_mix(burst_world, rng)

        def as_incoming(packet):
            if rng.random() < 0.3:  # transit: re-address to a foreign AS
                return dataclasses.replace(
                    packet,
                    header=dataclasses.replace(packet.header, dst_aid=777),
                )
            # Local delivery at AS 100: swap so dst is the local endpoint.
            return dataclasses.replace(
                packet, header=dataclasses.replace(packet.header, dst_aid=100)
            )

        scalar_router = _fresh_router(burst_world)
        batch_router = _fresh_router(burst_world)
        for _ in range(6):
            burst = [
                as_incoming(build(rng.choice(("inter", "intra", "replay", "forged-dst", "revoked-dst"))))
                for _ in range(rng.randint(1, 48))
            ]
            scalar = [scalar_router.process_incoming(p) for p in burst]
            batched = batch_router.process_incoming_batch(list(burst))
            assert scalar == batched
            _assert_same_state(scalar_router, batch_router)
        assert batch_router.forwarded_inter > 0  # transit exercised
        assert batch_router.forwarded_intra > 0  # local delivery exercised


class TestOpenBatch:
    """EphIdCodec.open_batch mirrors open() element for element."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mixed_validity(self, backend):
        with crypto_backend.use_backend(backend):
            codec = EphIdCodec(b"\x01" * 16, b"\x02" * 16)
            good = [codec.seal(i, 1000 + i, iv=i) for i in range(20)]
            bad = [b"\x00" * 16, b"short", b"", good[0][:-1] + b"\xff"]
            mixed = good + bad + good[:3]
            results = codec.open_batch(mixed)
        for ephid, info in zip(mixed, results):
            try:
                expected = codec.open(ephid)
            except Exception:
                expected = None
            assert info == expected

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cross_backend_agreement(self, backend):
        other = [name for name in BACKENDS if name != backend]
        codec = EphIdCodec(b"\x01" * 16, b"\x02" * 16, backend=backend)
        sealed = [codec.seal(i, 5000, iv=7000 + i) for i in range(8)]
        for name in other:
            peer = EphIdCodec(b"\x01" * 16, b"\x02" * 16, backend=name)
            assert peer.open_batch(sealed) == codec.open_batch(sealed)

    def test_empty(self):
        codec = EphIdCodec(b"\x01" * 16, b"\x02" * 16)
        assert codec.open_batch([]) == []


class TestBulkPrimitives:
    """The backend bulk entry points agree with their scalar forms."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_encrypt_blocks(self, backend):
        from repro.crypto.aes import AES

        cipher = AES(bytes(range(16)), backend=backend)
        blocks = [bytes([i]) * 16 for i in range(9)]
        bulk = cipher.encrypt_blocks(b"".join(blocks))
        assert bulk == b"".join(cipher.encrypt_block(b) for b in blocks)
        assert cipher.encrypt_blocks(b"") == b""
        with pytest.raises(ValueError):
            cipher.encrypt_blocks(b"\x00" * 15)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_tag_many(self, backend):
        from repro.crypto.cmac import Cmac

        mac = Cmac(bytes(range(16)), backend=backend)
        messages = [bytes([i]) * (i * 7 % 40) for i in range(12)]
        assert mac.tag_many(messages, 8) == [mac.tag(m, 8) for m in messages]
        assert mac.tag_many([], 8) == []
        with pytest.raises(ValueError):
            mac.tag_many(messages, 0)
