"""The ``metro:N`` scale preset and its memory contract.

The tentpole claim of :mod:`repro.state`: a metro-sized registry — 10^5
to 10^6 registered HIDs per AS — fits in packed columns with a bounded,
sub-linear number of Python objects and a resident-set footprint that
tracks the column bytes, not per-host object overhead.  These tests pin
the claim at a CI-sized rung (``metro:100k``), check the preset's
parser/validation surface, the population build path's backend
equivalence, and the streaming trace/profile path that keeps workload
generation itself in bounded memory.
"""

import gc
import os

import numpy as np
import pytest

from repro import scenarios
from repro.core.config import ApnaConfig
from repro.core.errors import ApnaError
from repro.core.hostdb import FIRST_HOST_HID
from repro.topology import (
    PopulationSpec,
    TopologyError,
    TopologySpec,
    UnknownAsError,
    WorldBuilder,
)
from repro.workload import TraceConfig, TraceGenerator, TrafficProfile

METRO_HOSTS = 100_000
#: RSS budget for one metro:100k build (2 x 100k hosts).  The packed
#: columns cost ~53 B/host (~11 MiB total); the ceiling leaves room for
#: keystream temporaries and allocator slack while staying far below
#: what 200k per-host record objects would need.
RSS_CEILING_BYTES = 96 * 1024 * 1024


def _rss_bytes() -> "int | None":
    try:
        with open("/proc/self/statm") as fh:
            return int(fh.read().split()[1]) * os.sysconf("SC_PAGESIZE")
    except (OSError, ValueError, IndexError):
        return None


class TestMetroMemoryBudget:
    def test_metro_build_stays_under_rss_ceiling(self):
        if _rss_bytes() is None:
            pytest.skip("/proc/self/statm not readable on this platform")
        gc.collect()
        before = _rss_bytes()
        world = scenarios.build(f"metro:{METRO_HOSTS}", seed=1)
        after = _rss_bytes()
        try:
            assert world.config.state_backend == "columnar"
            assert after - before < RSS_CEILING_BYTES, (
                f"metro:{METRO_HOSTS} grew RSS by {(after - before) / 2**20:.1f}"
                f" MiB (ceiling {RSS_CEILING_BYTES / 2**20:.0f} MiB)"
            )
        finally:
            world.close()

    def test_metro_object_count_is_sublinear(self):
        """Registering 2 x 100k hosts must allocate a bounded number of
        Python objects — the columns absorb the population."""
        gc.collect()
        baseline = len(gc.get_objects())
        world = scenarios.build(f"metro:{METRO_HOSTS}", seed=1)
        try:
            grown = len(gc.get_objects()) - baseline
            assert grown < METRO_HOSTS // 5, (
                f"2x{METRO_HOSTS} hosts allocated {grown} objects; "
                "expected the population to live in columns, not objects"
            )
            for name in ("a", "b"):
                hostdb = world.asys(name).hostdb
                assert hostdb.total_registered == METRO_HOSTS + 6
        finally:
            world.close()


class TestMetroPreset:
    def test_suffix_parsing(self):
        spec_250k = scenarios.spec("metro:250k")
        assert [p.hosts for p in spec_250k.populations] == [250_000, 250_000]
        spec_2m = scenarios.spec("metro:2M")
        assert [p.hosts for p in spec_2m.populations] == [2_000_000] * 2
        spec_default = scenarios.spec("metro")
        assert [p.hosts for p in spec_default.populations] == [1_000_000] * 2
        assert {p.at for p in spec_default.populations} == {"a", "b"}

    @pytest.mark.parametrize("bad", ["metro:abc", "metro:1G", "metro:k"])
    def test_bad_parameter_rejected(self, bad):
        with pytest.raises(TopologyError, match="metro"):
            scenarios.spec(bad)

    def test_zero_hosts_rejected(self):
        with pytest.raises(TopologyError, match="at least one host"):
            scenarios.spec("metro:0")

    def test_small_metro_world_shape(self):
        world = scenarios.build("metro:50", seed=3)
        try:
            for name in ("a", "b"):
                hostdb = world.asys(name).hostdb
                # 50 bulk HIDs + one named host + 5 service endpoints.
                assert len(hostdb) == 50 + 6
                assert hostdb.total_registered == 50 + 6
            # The named pair still works as protocol endpoints.
            assert "alice" in world.hosts and "bob" in world.hosts
        finally:
            world.close()

    def test_population_backend_equivalence(self):
        """The same seed yields bit-identical populations whichever
        state_backend holds them (rng consumption is backend-invariant)."""
        worlds = {
            backend: scenarios.build(
                "metro:40", seed=9, config=ApnaConfig(state_backend=backend)
            )
            for backend in ("object", "columnar")
        }
        try:
            for name in ("a", "b"):
                rows = {}
                for backend, world in worlds.items():
                    hostdb = world.asys(name).hostdb
                    rows[backend] = [
                        (r.hid, r.keys.control, r.keys.packet_mac, r.revoked)
                        for r in hostdb.records()
                        if r.hid >= FIRST_HOST_HID
                    ]
                assert rows["object"] == rows["columnar"]
                assert len(rows["object"]) == 40 + 1  # population + named host
        finally:
            for world in worlds.values():
                world.close()


class TestPopulationSpec:
    def test_unknown_as_rejected(self):
        spec = TopologySpec.fig1()
        bad = TopologySpec(
            ases=spec.ases,
            links=spec.links,
            hosts=spec.hosts,
            populations=(PopulationSpec("nowhere", 10),),
        )
        with pytest.raises(UnknownAsError):
            bad.validate()

    def test_builder_population(self):
        world = (
            WorldBuilder(seed=5)
            .asys("x")
            .asys("y")
            .link("x", "y")
            .population(25, at="x")
            .build()
        )
        try:
            assert world.asys("x").hostdb.total_registered == 25 + 5
            assert world.asys("y").hostdb.total_registered == 5
        finally:
            world.close()

    def test_builder_population_validation(self):
        builder = WorldBuilder().asys("x")
        with pytest.raises(UnknownAsError):
            builder.population(10, at="nowhere")
        with pytest.raises(TopologyError, match="at least one host"):
            builder.population(0, at="x")

    def test_register_population_guards(self):
        world = scenarios.build("fig1", seed=1)
        try:
            asys = world.asys("a")
            with pytest.raises(ValueError, match="at least 1"):
                asys.register_population(0)
            # Populations must ship with the spawn snapshot: once a shard
            # pool exists (any non-None value), bulk loads are refused.
            asys.shard_pool = object()
            with pytest.raises(ApnaError, match="before start_shard_pool"):
                asys.register_population(10)
            asys.shard_pool = None
            hids = asys.register_population(10)
            assert len(hids) == 10
            assert hids.start >= FIRST_HOST_HID
            assert all(asys.hostdb.is_valid(hid) for hid in hids)
        finally:
            world.close()


class TestStreamingTrace:
    def test_iter_arrays_is_deterministic_and_sorted(self):
        cfg = TraceConfig(hosts=64, duration=4_000.0, seed=11)
        chunks_a = list(TraceGenerator(cfg).iter_arrays(chunk_duration=900.0))
        chunks_b = list(TraceGenerator(cfg).iter_arrays(chunk_duration=900.0))
        assert len(chunks_a) == len(chunks_b) == 5  # ceil(4000 / 900)
        for left, right in zip(chunks_a, chunks_b):
            for column in ("start", "duration", "host_id", "is_https"):
                assert np.array_equal(left[column], right[column])
        starts = np.concatenate([c["start"] for c in chunks_a])
        assert len(starts) > 0
        assert np.all(np.diff(starts) >= 0)  # globally time-sorted
        assert starts[-1] <= cfg.duration
        hosts = np.concatenate([c["host_id"] for c in chunks_a])
        assert hosts.min() >= 0 and hosts.max() < cfg.hosts

    def test_stream_matches_iter_arrays(self):
        cfg = TraceConfig(hosts=32, duration=1_800.0, seed=4)
        records = list(TraceGenerator(cfg).stream(chunk_duration=600.0))
        chunks = list(TraceGenerator(cfg).iter_arrays(chunk_duration=600.0))
        flat = [
            (float(c["start"][i]), float(c["duration"][i]), int(c["host_id"][i]))
            for c in chunks
            for i in range(len(c["start"]))
        ]
        assert [(r.start, r.duration, r.host_id) for r in records] == flat

    def test_chunk_duration_validation(self):
        generator = TraceGenerator(TraceConfig(hosts=8, duration=100.0))
        with pytest.raises(ValueError, match="chunk_duration"):
            next(generator.iter_arrays(chunk_duration=0.0))

    def test_streamed_profile_delivers_all_flows(self):
        world = scenarios.build("fig1", seed=2)
        try:
            profile = TrafficProfile(
                trace=TraceConfig(
                    hosts=16, duration=600.0, peak_per_host=0.05, seed=6
                ),
                clients=2,
                servers=1,
                max_flows=40,
                window=2.0,
                stream=True,
                stream_chunk=120.0,
            )
            report = profile.drive(world)
            assert report.flows_offered == 40
            assert report.sessions_opened == 40
            assert report.payloads_delivered == 40
            assert report.delivery_ratio == 1.0
        finally:
            world.close()
