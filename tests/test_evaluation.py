"""Tier-1 coverage of :mod:`repro.evaluation` (the PR 10 scenario pack).

Four layers:

1. **Latency histogram** — the :mod:`repro.metrics.timing` measurement
   substrate the bounded-latency invariant stands on (conservative
   upper-edge percentiles, merge, snapshot).
2. **Runner machinery** — registry/preset agreement, constructor
   validation, report emission (text + JSON round-trip), the CLI.
3. **Nominal matrix** — every registered case runs green at small
   scale: no false drops, exact accounting, bounded latency, plus each
   scenario's own exactness arithmetic.
4. **Acceptance** — the ISSUE 10 gate: every preset at ``metro``-class
   scale (100k-host population) with all invariants green, and a
   chaos-composed run where every lost packet is exactly accounted.

The quoted preset names below double as the evidence the
``scenario-coverage`` analysis rule checks for.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.evaluation import EvaluationRunner
from repro.metrics import LatencyHistogram
from repro.metrics.timing import Timer
from repro import scenarios

ROOT = Path(__file__).resolve().parent.parent

#: Every evaluation case, spelled the way a runner caller would.
PRESETS = (
    "flash-crowd",
    "revocation-wave",
    "migration",
    "shutoff-storm",
    "churn",
)


# --------------------------------------------------------------------------
# 1. The latency histogram


def test_histogram_percentiles_are_conservative():
    hist = LatencyHistogram()
    samples = [0.001 * (i + 1) for i in range(100)]
    for sample in samples:
        hist.record(sample)
    assert hist.count == 100
    # Log-bucketed upper edges: every percentile bounds the true value
    # from above, and the order statistics stay ordered.
    assert hist.p50 >= sorted(samples)[49]
    assert hist.p99 >= sorted(samples)[98]
    assert hist.p50 <= hist.p99 <= hist.max
    assert hist.max >= samples[-1]


def test_histogram_merge_equals_combined_stream():
    left, right, both = LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
    for i in range(50):
        sample = 0.0003 * (i + 1)
        (left if i % 2 else right).record(sample)
        both.record(sample)
    left.merge(right)
    assert left.count == both.count
    assert left.p50 == both.p50
    assert left.p99 == both.p99
    assert left.snapshot() == both.snapshot()


def test_histogram_snapshot_shape():
    hist = LatencyHistogram()
    assert hist.p99 == 0.0 and hist.count == 0
    hist.record(0.004)
    snap = hist.snapshot()
    assert set(snap) == {"samples", "mean_ms", "p50_ms", "p99_ms", "max_ms"}
    assert snap["samples"] == 1
    assert snap["p99_ms"] >= 4.0


def test_timer_records_elapsed():
    with Timer() as timer:
        sum(range(1000))
    assert timer.elapsed > 0.0


# --------------------------------------------------------------------------
# 2. Runner machinery


def test_case_registry_matches_scenario_registry():
    names = EvaluationRunner.case_names()
    assert sorted(names) == sorted(PRESETS)
    # Every case builds a real registered preset.
    assert set(names) <= set(scenarios.names())


def test_runner_validates_its_knobs():
    with pytest.raises(ValueError, match="scale"):
        EvaluationRunner(scale=0)
    with pytest.raises(ValueError, match="nshards"):
        EvaluationRunner(nshards=1)
    with pytest.raises(ValueError, match="burst_size"):
        EvaluationRunner(burst_size=0)
    with pytest.raises(ValueError, match="unknown case"):
        EvaluationRunner(scale=8).run("no-such-case")


def _small_runner(**overrides):
    knobs = dict(scale=48, seed=7, nshards=2, burst_size=16, max_sources=48)
    knobs.update(overrides)
    return EvaluationRunner(**knobs)


def test_report_emission_round_trips():
    report = _small_runner().run_all(["flash-crowd"])
    assert report.passed
    scenario = report.report_for("flash-crowd")
    assert scenario is not None and scenario.preset == "flash-crowd"
    text = report.render_text()
    assert "flash-crowd" in text and "[PASS]" in text and "[FAIL]" not in text
    payload = json.loads(report.to_json())
    assert payload["passed"] is True
    (entry,) = payload["scenarios"]
    assert entry["packets"] == entry["delivered"] + entry["dropped"]
    assert entry["latency"]["p99_ms"] > 0.0
    assert all(item["passed"] for item in entry["invariants"])


def test_cli_runs_and_writes_json(tmp_path):
    out = tmp_path / "report.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.evaluation",
            "--scale",
            "40",
            "--json",
            str(out),
            "flash-crowd",
        ],
        capture_output=True,
        text=True,
        cwd=ROOT,
        env=env,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "[PASS]" in result.stdout
    payload = json.loads(out.read_text())
    assert payload["passed"] is True


# --------------------------------------------------------------------------
# 3. The nominal matrix, small scale


@pytest.mark.parametrize("preset", PRESETS)
def test_nominal_invariants_hold(preset):
    report = _small_runner().run(preset)
    failed = [inv.render() for inv in report.invariants if not inv.passed]
    assert not failed, "\n".join(failed)
    assert report.packets > 0
    assert report.delivered + report.dropped == report.packets


def test_flash_crowd_stream_arm_delivers():
    report = _small_runner(stream_flows=6).run("flash-crowd")
    assert report.passed
    assert any(inv.name == "stream-delivery" for inv in report.invariants)


def test_churn_always_composes_a_crash_storm():
    report = _small_runner().run("churn")
    assert report.passed
    names = {inv.name for inv in report.invariants}
    assert {"storm-activity", "convergence"} <= names
    assert report.notes["faults_injected"] > 0


# --------------------------------------------------------------------------
# 4. Acceptance: metro-class populations and chaos accounting

METRO_SCALE = 100_000


@pytest.mark.parametrize("preset", PRESETS)
def test_acceptance_metro_scale_invariants_green(preset):
    """ISSUE 10 gate: each preset at a 100k-host population, all green."""
    report = EvaluationRunner(scale=METRO_SCALE, seed=7, nshards=2).run(preset)
    failed = [inv.render() for inv in report.invariants if not inv.passed]
    assert not failed, "\n".join(failed)
    assert report.population == METRO_SCALE


def test_acceptance_chaos_accounts_every_lost_packet():
    """ISSUE 10 gate: under a FaultPlan storm, losses are exact."""
    runner = EvaluationRunner(
        scale=METRO_SCALE, seed=11, nshards=2, chaos=True
    )
    report = runner.run("revocation-wave")
    failed = [inv.render() for inv in report.invariants if not inv.passed]
    assert not failed, "\n".join(failed)
    accounting = next(
        inv for inv in report.invariants if inv.name == "exact-accounting"
    )
    assert accounting.passed
    # The storm really fired and the ledger charged exactly the losses.
    failures = report.drop_reasons.get("shard-failure", 0)
    assert failures > 0
    assert report.delivered + report.dropped == report.packets
