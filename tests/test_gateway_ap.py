"""Tests for connection-sharing devices (VII-B), the APNA gateway (VII-D)
and APNA-as-a-Service (VIII-E)."""

import pytest

from repro.gateway import (
    ApnaGateway,
    BridgeAccessPoint,
    DownstreamAs,
    LegacyHostNode,
    NatAccessPoint,
)
from repro.wire.ipv4 import ip_to_int
from tests.conftest import build_world


class TestBridgeMode:
    @pytest.fixture()
    def bridged(self):
        world = build_world(host_names=("bob",))
        bridge = BridgeAccessPoint.attach(world.as_a, "home-bridge")
        client1 = world.as_a.attach_host_behind_bridge(bridge, "laptop")
        client2 = world.as_a.attach_host_behind_bridge(bridge, "phone")
        client1.bootstrap()
        client2.bootstrap()
        world.network.compute_routes()
        return world, bridge, client1, client2

    def test_bridged_host_communicates(self, bridged):
        world, bridge, laptop, phone = bridged
        bob = world.hosts["bob"]
        bob_owned = bob.acquire_ephid_direct()
        laptop.connect(bob_owned.cert, early_data=b"hello via bridge")
        world.network.run()
        assert bob.inbox[0][2] == b"hello via bridge"

    def test_bridge_learns_ephids(self, bridged):
        world, bridge, laptop, phone = bridged
        bob = world.hosts["bob"]
        bob_owned = bob.acquire_ephid_direct()
        laptop.connect(bob_owned.cert, early_data=b"x")
        phone.connect(bob_owned.cert, early_data=b"y")
        world.network.run()
        assert bridge.learned >= 2

    def test_inbound_forwarded_to_right_client(self, bridged):
        world, bridge, laptop, phone = bridged
        bob = world.hosts["bob"]
        bob_owned = bob.acquire_ephid_direct()
        session = laptop.connect(bob_owned.cert, early_data=b"req")
        world.network.run()
        bob_session = next(iter(bob.sessions.values()))
        bob.send_data(bob_session, b"reply")
        world.network.run()
        assert laptop.inbox[-1][2] == b"reply"
        assert phone.inbox == []  # not flooded once learned

    def test_each_bridged_client_has_own_hid(self, bridged):
        # Bridge mode: "the AS needs to authenticate every single user".
        world, bridge, laptop, phone = bridged
        r1 = world.as_a.hostdb.find_by_subscriber(laptop.subscriber_id)
        r2 = world.as_a.hostdb.find_by_subscriber(phone.subscriber_id)
        assert r1.hid != r2.hid


class TestNatMode:
    @pytest.fixture()
    def cafe(self):
        world = build_world(host_names=("bob",))
        ap = world.as_a.attach_host("cafe-ap", node_cls=NatAccessPoint)
        ap.bootstrap()
        laptop = ap.register_client("cafe-laptop")
        phone = ap.register_client("cafe-phone")
        world.network.compute_routes()
        return world, ap, laptop, phone

    def acquire(self, world, client):
        got = []
        client.acquire_ephid(callback=got.append)
        world.network.run()
        assert got, "EphID issuance through the AP failed"
        return got[0]

    def test_client_gets_ephid_through_ap(self, cafe):
        world, ap, laptop, phone = cafe
        owned = self.acquire(world, laptop)
        # The EphID decodes to the AP's HID — clients are invisible to the AS.
        info = world.as_a.codec.open(owned.ephid)
        ap_record = world.as_a.hostdb.find_by_subscriber(ap.subscriber_id)
        assert info.hid == ap_record.hid
        # The AP tracked the binding in its EphID_info list.
        assert ap.ephid_info[owned.ephid] == "cafe-laptop"

    def test_client_end_to_end_data(self, cafe):
        world, ap, laptop, phone = cafe
        owned = self.acquire(world, laptop)
        bob = world.hosts["bob"]
        bob_owned = bob.acquire_ephid_direct()
        session = laptop.connect(bob_owned.cert, owned, early_data=b"from the cafe")
        world.network.run()
        assert bob.inbox[0][2] == b"from the cafe"
        # Reply reaches the right client through the AP.
        bob_session = next(iter(bob.sessions.values()))
        bob.send_data(bob_session, b"enjoy your coffee")
        world.network.run()
        assert laptop.inbox[-1][2] == b"enjoy your coffee"
        assert ap.relayed_out >= 1 and ap.relayed_in >= 1

    def test_ap_cannot_read_client_traffic(self, cafe):
        # The client generated the EphID key pair itself; the AP relays
        # ciphertext only (data privacy against the AP).
        world, ap, laptop, phone = cafe
        owned = self.acquire(world, laptop)
        bob = world.hosts["bob"]
        bob_owned = bob.acquire_ephid_direct()
        captured = []
        original = ap._relay_out

        def spy(apna_bytes, client_name):
            captured.append(apna_bytes)
            original(apna_bytes, client_name)

        ap._relay_out = spy
        laptop.connect(bob_owned.cert, owned, early_data=b"secret order: espresso")
        world.network.run()
        assert captured
        for frame in captured:
            assert b"espresso" not in frame

    def test_client_cannot_use_anothers_ephid(self, cafe):
        world, ap, laptop, phone = cafe
        laptop_owned = self.acquire(world, laptop)
        self.acquire(world, phone)
        bob = world.hosts["bob"]
        bob_owned = bob.acquire_ephid_direct()
        # Phone tries to send with the laptop's EphID.
        rejected_before = ap.rejected_frames
        phone.connect(bob_owned.cert, laptop_owned, early_data=b"spoof attempt")
        world.network.run()
        assert ap.rejected_frames == rejected_before + 1
        assert bob.inbox == []

    def test_ap_identifies_misbehaving_client(self, cafe):
        # The AS holds the AP accountable; the AP pinpoints the client.
        world, ap, laptop, phone = cafe
        owned = self.acquire(world, laptop)
        assert ap.identify(owned.ephid) == "cafe-laptop"
        assert ap.identify(bytes(16)) is None
        ap.block_client("cafe-laptop")
        bob = world.hosts["bob"]
        bob_owned = bob.acquire_ephid_direct()
        laptop.connect(bob_owned.cert, owned, early_data=b"blocked?")
        world.network.run()
        assert bob.inbox == []

    def test_ap_replaces_mac(self, cafe):
        # Outgoing packets pass the AS border router's MAC check, which
        # uses the AP's kHA — so the AP must have re-MAC'd them.
        world, ap, laptop, phone = cafe
        owned = self.acquire(world, laptop)
        bob = world.hosts["bob"]
        bob_owned = bob.acquire_ephid_direct()
        laptop.connect(bob_owned.cert, owned, early_data=b"x")
        world.network.run()
        from repro.core.border_router import DropReason

        assert world.as_a.br.drops[DropReason.BAD_MAC] == 0
        assert bob.inbox  # delivered


class TestGateway:
    @pytest.fixture()
    def gw_world(self):
        world = build_world(host_names=("bob",))
        gateway = world.as_a.attach_host("gw", node_cls=ApnaGateway)
        gateway.bootstrap()
        legacy = gateway.add_legacy_host("legacy-pc", ip_to_int("192.168.1.10"))
        world.network.compute_routes()
        return world, gateway, legacy

    def test_outbound_flow_translation(self, gw_world):
        world, gateway, legacy = gw_world
        bob = world.hosts["bob"]
        bob_owned = bob.acquire_ephid_direct()
        server_ip = ip_to_int("203.0.113.7")
        gateway.learn_mapping(server_ip, bob_owned.cert)
        legacy.send_ipv4(server_ip, b"legacy request", src_port=4000, dst_port=80)
        world.network.run()
        assert bob.inbox[0][2] == b"legacy request"
        assert gateway.translated_out == 1

    def test_return_path_rebuilds_ipv4(self, gw_world):
        world, gateway, legacy = gw_world
        bob = world.hosts["bob"]
        bob_owned = bob.acquire_ephid_direct()
        server_ip = ip_to_int("203.0.113.7")
        gateway.learn_mapping(server_ip, bob_owned.cert)
        legacy.send_ipv4(server_ip, b"ping", src_port=4000, dst_port=80)
        world.network.run()
        bob_session = next(iter(bob.sessions.values()))
        bob.send_data(bob_session, b"pong", src_port=80, dst_port=4000)
        world.network.run()
        header, transport, data = legacy.inbox[-1]
        assert data == b"pong"
        assert header.src == server_ip  # looks like it came from the server
        assert transport.dst_port == 4000

    def test_flow_reuse(self, gw_world):
        world, gateway, legacy = gw_world
        bob = world.hosts["bob"]
        bob_owned = bob.acquire_ephid_direct()
        server_ip = ip_to_int("203.0.113.7")
        gateway.learn_mapping(server_ip, bob_owned.cert)
        for i in range(3):
            legacy.send_ipv4(server_ip, f"msg{i}".encode(), src_port=4000, dst_port=80)
        world.network.run()
        # One flow, one session, one EphID.
        assert len(gateway._flow_out) == 1
        assert len(bob.inbox) == 3

    def test_distinct_flows_distinct_ephids(self, gw_world):
        # "for each new IPv4 flow, the gateway uses a different EphID".
        world, gateway, legacy = gw_world
        bob = world.hosts["bob"]
        bob_owned = bob.acquire_ephid_direct()
        server_ip = ip_to_int("203.0.113.7")
        gateway.learn_mapping(server_ip, bob_owned.cert)
        legacy.send_ipv4(server_ip, b"a", src_port=4000, dst_port=80)
        legacy.send_ipv4(server_ip, b"b", src_port=4001, dst_port=80)
        world.network.run()
        ephids = {s.local.ephid for s in gateway._flow_out.values()}
        assert len(ephids) == 2

    def test_unmapped_destination_dropped(self, gw_world):
        world, gateway, legacy = gw_world
        legacy.send_ipv4(ip_to_int("198.51.100.1"), b"???", src_port=1, dst_port=2)
        world.network.run()
        assert gateway.unmapped_drops == 1

    def test_exposed_legacy_service(self, gw_world):
        """An APNA-native client reaches a legacy IPv4 server through the
        server-side gateway and its virtual endpoints."""
        world, gateway, legacy = gw_world
        from repro.dns import DnsZone, publish_service

        zone = DnsZone(world.rng)
        record = publish_service(gateway, zone, "legacy-svc.example")
        gateway.expose_service(80, legacy.ip)
        legacy.serve(80, lambda data: b"legacy says: " + data)

        bob = world.hosts["bob"]
        bob.connect(record.cert, early_data=b"hi", dst_port=80)
        world.network.run()
        # The request reached the legacy server from a virtual endpoint.
        header, transport, data = legacy.inbox[0]
        assert data == b"hi"
        assert header.src >= ip_to_int("10.64.0.1")
        # And the response made it all the way back, encrypted.
        assert bob.inbox[-1][2] == b"legacy says: hi"

    def test_virtual_endpoints_unique_per_flow(self, gw_world):
        world, gateway, legacy = gw_world
        from repro.dns import DnsZone, publish_service

        zone = DnsZone(world.rng)
        record = publish_service(gateway, zone, "svc.example")
        gateway.expose_service(80, legacy.ip)
        legacy.serve(80, lambda data: b"ok")
        bob = world.hosts["bob"]
        bob.connect(record.cert, early_data=b"flow-1", dst_port=80)
        bob.connect(record.cert, early_data=b"flow-2", dst_port=80)
        world.network.run()
        sources = {header.src for header, _, _ in legacy.inbox}
        assert len(sources) == 2  # two flows, two virtual endpoints


class TestApnaAsAService:
    def test_downstream_hosts_use_upstream_apna(self):
        world = build_world(host_names=("bob",))
        downstream = DownstreamAs(64999, world.as_a)
        downstream.bootstrap()
        host = downstream.attach_host("branch-pc")
        world.network.compute_routes()

        got = []
        host.acquire_ephid(callback=got.append)
        world.network.run()
        assert got
        owned = got[0]
        # The EphID attributes to the upstream ISP's AID.
        assert owned.cert.aid == world.as_a.aid

        bob = world.hosts["bob"]
        bob_owned = bob.acquire_ephid_direct()
        host.connect(bob_owned.cert, owned, early_data=b"from downstream")
        world.network.run()
        assert bob.inbox[0][2] == b"from downstream"

    def test_anonymity_set_grows_with_upstream(self):
        world = build_world(host_names=("bob",))
        downstream = DownstreamAs(64999, world.as_a)
        downstream.bootstrap()
        downstream.attach_host("pc1")
        downstream.attach_host("pc2")
        assert downstream.anonymity_set_hint >= len(world.as_a.hostdb)
