"""Tests for the scenario registry and preset-string parsing."""

import pytest

from repro import scenarios
from repro.topology import TopologyError, TopologySpec, World


class TestPresetParsing:
    def test_fig1(self):
        spec = scenarios.spec("fig1")
        assert [a.aid for a in spec.ases] == [100, 200]

    def test_two_as_alias(self):
        assert scenarios.spec("two-as") == scenarios.spec("fig1")

    def test_fig1_rejects_parameter(self):
        with pytest.raises(TopologyError):
            scenarios.spec("fig1:2")

    def test_chain_with_count(self):
        spec = scenarios.spec("chain:5")
        assert len(spec.ases) == 5
        assert len(spec.links) == 4

    def test_chain_requires_parameter(self):
        with pytest.raises(TopologyError, match="chain:N"):
            scenarios.spec("chain")

    def test_chain_rejects_garbage(self):
        with pytest.raises(TopologyError, match="chain:N"):
            scenarios.spec("chain:five")

    def test_star_with_count(self):
        spec = scenarios.spec("star:3")
        assert len(spec.ases) == 4  # hub + 3 leaves
        assert spec.ases[0].aid == 1

    def test_transit_stub_txs(self):
        spec = scenarios.spec("transit-stub:2x2")
        assert len(spec.ases) == 6
        assert [a.aid for a in spec.ases[:2]] == [1, 2]

    def test_transit_stub_requires_txs_form(self):
        with pytest.raises(TopologyError, match="TxS"):
            scenarios.spec("transit-stub:3")
        with pytest.raises(TopologyError, match="TxS"):
            scenarios.spec("transit-stub:axb")

    def test_unknown_scenario_lists_registered(self):
        with pytest.raises(TopologyError) as excinfo:
            scenarios.spec("moebius")
        assert "fig1" in str(excinfo.value)

    def test_whitespace_tolerated(self):
        assert scenarios.spec(" chain : 3 ") == scenarios.spec("chain:3")


class TestBuild:
    def test_build_returns_world(self):
        world = scenarios.build("fig1", seed=11)
        assert isinstance(world, World)
        assert world.as_a.aid == 100

    def test_build_is_deterministic(self):
        one = scenarios.build("chain:3", seed=5)
        two = scenarios.build("chain:3", seed=5)
        assert one.ases[0].keys.signing.public == two.ases[0].keys.signing.public

    def test_built_chain_routes(self):
        world = scenarios.build("chain:4", seed=1)
        assert world.as_path(100, 400) == [100, 200, 300, 400]


class TestRegistry:
    def test_names_include_builtins(self):
        for name in ("fig1", "chain", "star", "transit-stub", "two-as"):
            assert name in scenarios.names()

    def test_describe_pairs(self):
        described = dict(scenarios.describe())
        assert "Fig. 1" in described["fig1"]

    def test_register_and_resolve_custom(self):
        name = "test-dumbbell"
        if name in scenarios.names():  # pragma: no cover - reruns in one process
            del scenarios._REGISTRY[name]

        @scenarios.register(name, description="two hubs, N leaves each")
        def _dumbbell(arg):
            n = int(arg or 1)
            from repro.topology import AsSpec, LinkSpec

            hubs = (AsSpec("h1", 1, "transit"), AsSpec("h2", 2, "transit"))
            leaves = tuple(
                AsSpec(f"l{side}{i}", 100 * side + i, "stub")
                for side in (1, 2)
                for i in range(n)
            )
            links = (LinkSpec("h1", "h2"),) + tuple(
                LinkSpec(f"h{side}", f"l{side}{i}")
                for side in (1, 2)
                for i in range(n)
            )
            return TopologySpec(ases=hubs + leaves, links=links)

        try:
            world = scenarios.build(f"{name}:2", seed=3)
            assert len(world.ases) == 6
            assert world.as_path("l10", "l21") == [100, 1, 2, 201]
        finally:
            del scenarios._REGISTRY[name]

    def test_double_registration_rejected(self):
        with pytest.raises(TopologyError, match="already registered"):
            scenarios.register("fig1")(lambda arg: TopologySpec())
