"""Smoke + invariant tests for the experiment runners (E1-E12).

Each runner is executed at reduced scale with ``quiet=True`` and its
paper shape claim is asserted — the experiments are part of the library
surface, so they must stay runnable and keep reproducing the paper's
qualitative results as the code evolves.
"""

import os

import pytest

from repro.experiments import (
    e1_ms_performance,
    e2_figure8,
    e4_latency,
    e5_granularity,
    e6_revocation,
    e7_baselines,
    e8_overhead,
    e10_security,
    e11_pathval,
    e12_replay,
    e13_aaas,
    e14_lifetimes,
    e15_receive_only,
)


class TestE1MsPerformance:
    @pytest.fixture(scope="class")
    def result(self):
        # 240 requests keeps the timed loop well above scheduler jitter
        # now that the openssl crypto backend makes each issuance ~100x
        # cheaper than the pure-Python path the 60-request value was
        # sized for.
        return e1_ms_performance.run(requests=240, trace_hosts=800, workers=2, quiet=True)

    def test_issuance_exceeds_peak_demand(self, result):
        # The paper's claim at matched scale: the MS keeps up.
        assert result.headroom > 1.0

    def test_parallelism_helps(self, result):
        # The share-nothing workers need their own cores to show a
        # speedup; on a single-core machine the most the paper's claim
        # can mean is that parallelisation doesn't collapse throughput.
        floor = 0.9 if (os.cpu_count() or 1) >= 2 else 0.5
        assert result.parallel_rate >= result.single_rate * floor

    def test_latency_is_finite_and_positive(self, result):
        assert 0 < result.us_per_ephid < 1e6


class TestE2Figure8:
    @pytest.fixture(scope="class")
    def result(self):
        return e2_figure8.run(packets_per_size=40, hosts=2, sizes=(128, 1518), quiet=True)

    def test_no_throughput_penalty(self, result):
        assert result.no_penalty

    def test_packet_rate_decreases_with_size(self, result):
        rates = [point.measured_pps for point in result.points]
        assert rates == sorted(rates, reverse=True)

    def test_bit_rate_increases_with_size(self, result):
        bitrates = [
            point.measured_pps * point.size * 8 for point in result.points
        ]
        assert bitrates == sorted(bitrates)


class TestE4Latency:
    @pytest.fixture(scope="class")
    def result(self):
        return e4_latency.run(quiet=True)

    def test_all_scenarios_match_paper(self, result):
        assert result.all_match

    def test_rtt_ladder_values(self, result):
        measured = {p.scenario: round(p.measured_value, 2) for p in result.points}
        assert measured["host-host, 0-RTT data"] == 0.0
        assert measured["client-server, data after accept"] == 1.5


class TestE5Granularity:
    @pytest.fixture(scope="class")
    def result(self):
        return e5_granularity.run(flows=6, packets_per_flow=2, applications=2, quiet=True)

    def test_tradeoff_ordering(self, result):
        assert result.ordering_holds

    def test_per_flow_is_unlinkable(self, result):
        assert result.by_name("per-flow").linkage_score == 0.0

    def test_per_host_costs_one_request(self, result):
        assert result.by_name("per-host").ms_requests == 1


class TestE6Revocation:
    @pytest.fixture(scope="class")
    def result(self):
        return e6_revocation.run(
            duration=1200.0, revocations_per_second=4.0, ephid_lifetime=120.0,
            sample_every=60.0, quiet=True,
        )

    def test_pruning_bounds_the_list(self, result):
        assert result.pruning_wins

    def test_unpruned_grows_monotonically(self, result):
        assert result.unpruned_sizes == sorted(result.unpruned_sizes)

    def test_threshold_policy_fires(self, result):
        assert result.hids_revoked > 0


class TestE7Baselines:
    @pytest.fixture(scope="class")
    def result(self):
        return e7_baselines.run(count=60, quiet=True)

    def test_paper_criticisms_reproduce(self, result):
        assert result.claims_hold

    def test_apip_whitelist_hole(self, result):
        assert result.apip_hole_packets > 0

    def test_persona_breaks_demux(self, result):
        assert result.persona_demux_accuracy < 0.5


class TestE8Overhead:
    @pytest.fixture(scope="class")
    def result(self):
        return e8_overhead.run(quiet=True)

    def test_mtu_goodput_above_90_percent(self, result):
        assert result.overhead_acceptable

    def test_goodput_monotone_in_size(self, result):
        apna = [point.apna_native_goodput for point in result.points]
        assert apna == sorted(apna)

    def test_ipv4_beats_apna_everywhere(self, result):
        # The overhead is the price of the 48 B accountable header.
        assert all(
            point.ipv4_goodput > point.apna_native_goodput
            for point in result.points
        )


class TestE10Security:
    @pytest.fixture(scope="class")
    def result(self):
        return e10_security.run(quiet=True)

    def test_every_attack_defended(self, result):
        assert result.all_defended

    def test_attacks_actually_ran(self, result):
        assert all(outcome.attempts > 0 for outcome in result.outcomes)


class TestE11Pathval:
    @pytest.fixture(scope="class")
    def result(self):
        return e11_pathval.run(path_lengths=(2, 4), iterations=20, quiet=True)

    def test_extension_works(self, result):
        assert result.extension_works

    def test_stamping_scales_linearly(self, result):
        assert result.stamping_scales_linearly

    def test_verification_roughly_constant(self, result):
        assert max(result.verify_us) < 5 * min(result.verify_us)


class TestE12Replay:
    @pytest.fixture(scope="class")
    def result(self):
        return e12_replay.run(packets=40, replay_factor=2, iterations=30, quiet=True)

    def test_all_replays_caught(self, result):
        assert result.detection_complete

    def test_fp_rate_improves_with_memory(self, result):
        fps = [fp for _bits, _kib, fp in result.fp_rows]
        assert fps == sorted(fps, reverse=True)


class TestE13Aaas:
    @pytest.fixture(scope="class")
    def result(self):
        return e13_aaas.run(stub_sizes=(3, 10), upstream_hosts=40, quiet=True)

    def test_privacy_amplification(self, result):
        assert result.privacy_claim_holds

    def test_accountability_preserved(self, result):
        assert result.accountability_preserved

    def test_amplification_factor_sensible(self, result):
        small = result.points[0]
        assert small.amplification > 5.0


class TestE14Lifetimes:
    @pytest.fixture(scope="class")
    def result(self):
        return e14_lifetimes.run(hosts=500, trace_duration=7200.0, quiet=True)

    def test_fifteen_minutes_covers_most_flows(self, result):
        assert result.fifteen_minutes_covers_most_flows

    def test_classes_beat_fixed(self, result):
        assert result.classes_beat_fixed

    def test_shorter_lifetime_means_more_renewals(self, result):
        assert (
            result.by_name("fixed 60 s").issuances_per_flow
            > result.by_name("fixed 900 s (paper)").issuances_per_flow
            > result.by_name("fixed 3600 s").issuances_per_flow
        )

    def test_longer_lifetime_means_more_exposure(self, result):
        assert (
            result.by_name("fixed 60 s").mean_exposure_s
            < result.by_name("fixed 900 s (paper)").mean_exposure_s
            < result.by_name("fixed 3600 s").mean_exposure_s
        )


class TestE15ReceiveOnly:
    @pytest.fixture(scope="class")
    def result(self):
        return e15_receive_only.run(n_clients=2, attack_rounds=2, quiet=True)

    def test_mitigation_works(self, result):
        assert result.mitigation_works

    def test_naive_design_is_actually_vulnerable(self, result):
        # The attack must be real for the mitigation to mean anything.
        assert result.naive.shutoff_accepted
        assert result.naive.benign_sessions_broken == 2
        assert result.naive.dns_updates_forced == 2

    def test_receive_only_isolates_the_attacker(self, result):
        assert result.receive_only.benign_sessions_broken == 0
        assert result.receive_only.published_ephid_survives
