"""Adversarial-input robustness for every wire-facing parser.

Border routers, accountability agents and hosts all parse bytes an
adversary controls (Section II's adversary sees and can inject arbitrary
traffic), so every parser must fail *closed* with its module's documented
error type — never leak a raw ``struct.error``, ``IndexError`` or
``UnicodeDecodeError`` that could crash a service loop.

Each property feeds arbitrary bytes (plus mutated valid messages, which
probe deeper than random noise) and accepts exactly two outcomes: a
successful parse, or the documented exception.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import framing
from repro.core.certs import AsCertificate, CertError, EphIdCertificate
from repro.core.ephid import EphIdCodec
from repro.core.errors import ApnaError, EphIdError
from repro.core.messages import (
    BootstrapReply,
    BootstrapRequest,
    EphIdReply,
    EphIdRequest,
    IdInfo,
    InfraUpdate,
    MessageError,
    RevocationPush,
    ShutoffRequest,
    ShutoffResponse,
)
from repro.core.session import ConnectionAccept, ConnectionRequest
from repro.pathval.passport import PassportHeader
from repro.pathval.shutoff_ext import OnPathShutoffRequest
from repro.tls.ca import DomainCertError, DomainCertificate
from repro.tls.handshake import Attestation, AuthRequest, TlsAuthError
from repro.wire.apna import ApnaHeader, ApnaPacket
from repro.wire.errors import WireError
from repro.wire.gre import GreHeader
from repro.wire.icmp import IcmpMessage
from repro.wire.ipv4 import Ipv4Header
from repro.wire.transport import TransportHeader, split_segment

junk = st.binary(min_size=0, max_size=256)

#: (parser callable, acceptable exception types)
PARSERS = [
    (ApnaHeader.parse, (WireError,)),
    (lambda data: ApnaHeader.parse(data, with_nonce=True), (WireError,)),
    (ApnaPacket.from_wire, (WireError,)),
    (IcmpMessage.parse, (WireError,)),
    (lambda data: Ipv4Header.parse(data), (WireError,)),
    (GreHeader.parse, (WireError,)),
    (TransportHeader.parse, (WireError,)),
    (split_segment, (WireError,)),
    (EphIdCertificate.parse, (CertError,)),
    (AsCertificate.parse, (CertError,)),
    (ConnectionRequest.parse, (CertError,)),
    (ConnectionAccept.parse, (CertError,)),
    (framing.unframe, (ApnaError,)),
    (BootstrapRequest.parse, (MessageError,)),
    (BootstrapReply.parse, (MessageError, CertError)),
    (IdInfo.parse, (MessageError,)),
    (InfraUpdate.parse, (MessageError,)),
    (EphIdRequest.parse, (MessageError,)),
    (EphIdReply.parse, (MessageError, CertError)),
    (ShutoffRequest.parse, (MessageError, CertError)),
    (ShutoffResponse.parse, (MessageError,)),
    (RevocationPush.parse, (MessageError,)),
    (PassportHeader.parse, (WireError, ValueError)),
    (OnPathShutoffRequest.parse, (ValueError,)),
    (DomainCertificate.parse, (DomainCertError,)),
    (AuthRequest.parse, (TlsAuthError,)),
    (Attestation.parse, (TlsAuthError,)),
]

PARSER_IDS = [
    getattr(parser, "__qualname__", repr(parser)).replace("<locals>.", "")
    for parser, _errors in PARSERS
]


@pytest.mark.parametrize(("parser", "errors"), PARSERS, ids=PARSER_IDS)
@given(data=junk)
@settings(max_examples=60, deadline=None)
def test_arbitrary_bytes_fail_closed(parser, errors, data):
    try:
        parser(data)
    except errors:
        pass  # the documented failure mode


class TestMutatedValidInputs:
    """Bit-flipped valid messages: deeper coverage than pure noise."""

    @staticmethod
    def _mutations(valid: bytes):
        for i in range(0, len(valid), max(1, len(valid) // 24)):
            yield valid[:i] + bytes([valid[i] ^ 0xFF]) + valid[i + 1 :]
        for cut in range(0, len(valid), max(1, len(valid) // 8)):
            yield valid[:cut]
        yield valid + b"\x00" * 7

    def _check(self, parser, errors, valid: bytes):
        parser(valid)  # sanity: the unmutated message parses
        for mutated in self._mutations(valid):
            try:
                parser(mutated)
            except errors:
                pass

    def test_apna_packet(self):
        packet = ApnaPacket(ApnaHeader(1, bytes(16), bytes(16), 2), b"payload")
        self._check(ApnaPacket.from_wire, (WireError,), packet.to_wire())

    def test_icmp(self):
        message = IcmpMessage(8, identifier=7, sequence=3, payload=b"ping")
        self._check(IcmpMessage.parse, (WireError,), message.pack())

    def test_transport(self):
        header = TransportHeader(80, 443, seq=9)
        self._check(TransportHeader.parse, (WireError,), header.pack())

    def test_passport(self):
        passport = PassportHeader(((100, b"\x01" * 8), (200, b"\x02" * 8)))
        self._check(
            PassportHeader.parse, (WireError, ValueError), passport.pack()
        )

    def test_domain_certificate(self, world):
        from repro.core.keys import SigningKeyPair
        from repro.tls.ca import WebCa

        ca = WebCa(world.rng)
        cert = ca.issue("shop.example", SigningKeyPair.generate(world.rng).public)
        self._check(DomainCertificate.parse, (DomainCertError,), cert.pack())

    def test_ephid_certificate(self, world):
        alice = world.hosts["alice"]
        owned = alice.acquire_ephid_direct()
        self._check(EphIdCertificate.parse, (CertError,), owned.cert.pack())

    def test_onpath_shutoff_request(self, world):
        from repro.core.keys import SigningKeyPair

        signer = SigningKeyPair.generate(world.rng)
        request = OnPathShutoffRequest.build(b"\x00" * 64, 200, b"\x01" * 8, signer)
        self._check(OnPathShutoffRequest.parse, (ValueError,), request.pack())


class TestEphIdCodecRobustness:
    @given(data=st.binary(min_size=16, max_size=16))
    @settings(max_examples=80, deadline=None)
    def test_random_tokens_rejected(self, data):
        codec = EphIdCodec(b"\x01" * 16, b"\x02" * 16)
        # 2^-32 chance of a random MAC passing; treat success as failure.
        with pytest.raises(EphIdError):
            codec.open(data)

    def test_wrong_length_rejected(self):
        codec = EphIdCodec(b"\x01" * 16, b"\x02" * 16)
        with pytest.raises(EphIdError):
            codec.open(b"short")
        with pytest.raises(EphIdError):
            codec.open(b"\x00" * 32)
