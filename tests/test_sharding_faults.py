"""Chaos acceptance suite for the self-healing shard data plane.

The contract under deterministic fault storms (:mod:`repro.faults`):

* every packet whose worker survived gets EXACTLY the verdict the
  single-process router computes — failures never blur healthy verdicts;
* every packet owed by a failed worker is dropped-and-counted
  (``DropReason.SHARD_FAILURE``), never guessed, and the ``stats()``
  ledger accounts for each one;
* the plane never deadlocks and never mispairs a reply with the wrong
  burst, whatever mix of kills, hangs, error frames, garbage replies and
  benign delays the storm throws;
* once a shard exhausts its restart budget the plane degrades to exact
  in-process forwarding instead of refusing traffic.

These runs use worlds *without* the replay filter: filter history is the
one thing a restart legitimately loses (the documented bounded-horizon
exception), so excluding it makes the equivalence bar total instead of
"total except replays".  The filterless configuration means a restarted
shard is state-identical to one that never crashed — any verdict
divergence is a real bug.
"""

import random

import pytest

from repro.core.border_router import BorderRouter, DropReason
from repro.core.config import ApnaConfig
from repro.faults import FAULT_KINDS, Fault, FaultPlan, crash_storm_plan
from repro.sharding import ShardedDataPlane, SupervisorPolicy
from repro.wire.apna import Endpoint
from repro import scenarios

from tests.conftest import build_world

SHARD_COUNTS = (2, 3)

#: Chaos supervision: quick hang detection, effectively unlimited
#: restarts (the storm must never exhaust the budget unless a test wants
#: it to), minimal backoff so the suite stays fast.
CHAOS_POLICY = SupervisorPolicy(
    reply_timeout=0.4, max_restarts=10_000, restart_backoff=0.001
)


def _build_world(nshards, routing="keyed"):
    return build_world(
        config=ApnaConfig(forwarding_shards=nshards, shard_routing=routing),
        host_names=("alice", "bob", "carol", "dave", "erin"),
    )


def _reference_router(world):
    """The single-process oracle over the same hostdb/revocations."""
    return BorderRouter(
        world.as_a.aid,
        world.as_a.codec,
        world.as_a.hostdb,
        world.as_a.revocations,
        world.network.scheduler.clock(),
        packet_mac_size=world.config.packet_mac_size,
        replay_filter=None,
    )


def _fresh_plane(world, nshards, policy=CHAOS_POLICY):
    as_a = world.as_a
    return ShardedDataPlane.from_parts(
        aid=as_a.aid,
        enc_key=as_a.keys.secret.ephid_enc,
        mac_key=as_a.keys.secret.ephid_mac,
        hostdb=as_a.hostdb,
        revocations=as_a.revocations,
        nshards=nshards,
        plan=as_a.shard_plan,
        packet_mac_size=world.config.packet_mac_size,
        supervision=policy,
    )


#: Verdict classes in the storm mix.  No "replay" kind: these worlds run
#: without the filter (see the module docstring), so every packet is
#: unique and equivalence is exact across restarts.
KINDS = (
    "inter", "inter", "inter", "intra", "forged", "expired", "revoked",
    "bad-hid", "bad-mac", "foreign", "forged-dst",
)


def _packet_mix(world, rng):
    """The equivalence suite's packet builder, minus replay duplicates."""
    import dataclasses

    alice = world.hosts["alice"]
    carol = world.hosts["carol"]
    erin = world.hosts["erin"]
    bob = world.hosts["bob"]
    sources = [
        (host, host.acquire_ephid_direct()) for host in (alice, carol, erin)
    ]
    peer = bob.acquire_ephid_direct()
    local_peer = carol.acquire_ephid_direct()
    revocable = [
        (host, host.acquire_ephid_direct()) for host in (alice, erin)
    ]
    codec = world.as_a.codec
    alice_hid = world.as_a.hostdb.find_by_subscriber(alice.subscriber_id).hid
    expired_ephid = codec.seal(
        alice_hid, exp_time=1, iv=world.as_a.ivs.next_iv_for(alice_hid)
    )
    bad_hid = 0xDEAD_0000
    bad_hid_ephid = codec.seal(
        bad_hid, exp_time=2**31, iv=world.as_a.ivs.next_iv_for(bad_hid)
    )
    dst_inter = Endpoint(world.as_b.aid, peer.ephid)
    dst_intra = Endpoint(world.as_a.aid, local_peer.ephid)

    def build(kind):
        host, src = rng.choice(sources)
        make = host.stack.make_packet
        if kind == "intra":
            return make(src.ephid, dst_intra, b"data")
        if kind == "forged":
            packet = make(src.ephid, dst_inter, b"data")
            return dataclasses.replace(
                packet,
                header=dataclasses.replace(
                    packet.header, src_ephid=rng.randbytes(16)
                ),
            )
        if kind == "expired":
            return make(expired_ephid, dst_inter, b"data")
        if kind == "revoked":
            rev_host, rev = rng.choice(revocable)
            return rev_host.stack.make_packet(rev.ephid, dst_inter, b"data")
        if kind == "bad-hid":
            return make(bad_hid_ephid, dst_inter, b"data")
        if kind == "bad-mac":
            packet = make(src.ephid, dst_inter, b"data")
            return dataclasses.replace(
                packet, header=packet.header.with_mac(b"\xff" * 8)
            )
        if kind == "foreign":
            packet = make(src.ephid, dst_inter, b"data")
            return dataclasses.replace(
                packet, header=dataclasses.replace(packet.header, src_aid=999)
            )
        if kind == "forged-dst":
            return make(
                src.ephid,
                Endpoint(world.as_a.aid, rng.randbytes(16)),
                b"data",
            )
        return make(src.ephid, dst_inter, b"data")  # "inter"

    return build, revocable


class TestFaultPlan:
    def test_crash_storm_is_deterministic(self):
        a = crash_storm_plan(3, 100, seed=42)
        b = crash_storm_plan(3, 100, seed=42)
        assert a.schedule() == b.schedule()
        assert len(a) > 0
        assert a.schedule() != crash_storm_plan(3, 100, seed=43).schedule()

    def test_crash_storm_covers_every_kind(self):
        plan = crash_storm_plan(3, 200, seed=0, rate=0.2)
        kinds = {fault.kind for _, _, fault in plan.schedule()}
        assert kinds == set(FAULT_KINDS)

    def test_crash_storm_spares_opening_bursts(self):
        plan = crash_storm_plan(4, 50, seed=1, rate=1.0, spare_first=3)
        assert all(seq >= 3 for _, seq, _ in plan.schedule())

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault("explode")
        with pytest.raises(ValueError, match="delay"):
            Fault("delay", delay=-1)
        with pytest.raises(ValueError, match="rate"):
            crash_storm_plan(2, 10, rate=1.5)
        with pytest.raises(ValueError, match="kinds"):
            crash_storm_plan(2, 10, kinds=())

    def test_plan_add_accepts_strings(self):
        plan = FaultPlan({(0, 3): "kill"}).add(1, 4, "hang")
        assert plan.fault_for(0, 3) == Fault("kill")
        assert plan.fault_for(1, 4) == Fault("hang")
        assert plan.fault_for(0, 0) is None
        assert len(plan) == 2


@pytest.mark.parametrize("nshards", SHARD_COUNTS)
class TestCrashStormEquivalence:
    """The acceptance bar: >= 100 bursts through a seeded storm mixing
    every fault kind, with exact verdict equivalence for every delivered
    packet and full accounting for every dropped one."""

    BURSTS = 110
    BURST_SIZE = 5

    @pytest.mark.parametrize("routing", ("keyed", "residue"))
    def test_storm_preserves_delivered_verdicts(self, nshards, routing):
        # Both routing maps must survive the same storm: worker restarts
        # resync state built under the same map the dispatcher routes
        # with (kR rides ShardSpec and MSG_RESYNC), so keyed routing must
        # not change a single delivered verdict mid-chaos.
        world = _build_world(nshards, routing)
        world.network.run_until(5.0)  # let the exp_time=1 EphID expire
        rng = random.Random(0xFA17 + nshards)
        build, revocable = _packet_mix(world, rng)
        router = _reference_router(world)
        plan = crash_storm_plan(
            nshards, self.BURSTS, seed=7 + nshards, rate=0.06, delay=0.005
        )
        assert len(plan) > 0
        plane = _fresh_plane(world, nshards)
        plane.install_faults(plan)
        total = delivered = failures = 0
        try:
            for burst_no in range(self.BURSTS):
                packets = [
                    build(rng.choice(KINDS)) for _ in range(self.BURST_SIZE)
                ]
                now = world.as_a.clock()
                verdicts = plane.process(
                    [p.to_wire() for p in packets],
                    [True] * len(packets),
                    now,
                )
                for packet, verdict in zip(packets, verdicts):
                    total += 1
                    if verdict.reason is DropReason.SHARD_FAILURE:
                        failures += 1
                        continue
                    delivered += 1
                    assert verdict == router.process_outgoing(packet), (
                        f"burst {burst_no}: delivered verdict diverged "
                        "from the single-process oracle"
                    )
                if burst_no == self.BURSTS // 2:
                    # Mid-storm revocation: the authoritative list first
                    # (what restarts resync from), then the broadcast.
                    _, owned = revocable[0]
                    world.as_a.revocations.add(owned.ephid, 2**31)
                    plane.revoke_ephid(owned.ephid, 2**31)
            stats = plane.stats()
        finally:
            plane.close()
        # The storm actually stormed, and every loss is accounted for.
        assert plan.injected, "the schedule never fired"
        disruptive = [
            kind for _, _, kind in plan.injected if kind != "delay"
        ]
        assert disruptive, "storm contained no disruptive faults"
        assert failures > 0
        assert delivered + failures == total
        assert stats["dropped_packets"] == failures
        assert stats[DropReason.SHARD_FAILURE.value] == failures
        assert stats["restarts"] > 0
        assert stats["degraded"] == 0
        assert delivered > total // 2, "storm drowned the signal"

    def test_storm_is_reproducible(self, nshards):
        """Same seeds, same storm: the injected-fault log and the
        supervision ledger come out identical across two fresh runs."""
        ledgers = []
        for _ in range(2):
            world = _build_world(nshards)
            rng = random.Random(99)
            build, _ = _packet_mix(world, rng)
            plan = crash_storm_plan(nshards, 40, seed=5, rate=0.1)
            plane = _fresh_plane(world, nshards)
            plane.install_faults(plan)
            try:
                for _ in range(40):
                    packets = [build(rng.choice(KINDS)) for _ in range(4)]
                    plane.process(
                        [p.to_wire() for p in packets],
                        [True] * len(packets),
                        world.as_a.clock(),
                    )
                stats = plane.stats()
            finally:
                plane.close()
            ledgers.append(
                (
                    plan.injected,
                    stats["restarts"],
                    stats["dropped_bursts"],
                    stats["dropped_packets"],
                )
            )
        assert ledgers[0] == ledgers[1]


class TestFaultKindsIsolated:
    """One fault kind at a time, pinned to a specific burst."""

    def _run(self, plan, *, bursts=6, policy=CHAOS_POLICY):
        world = _build_world(2)
        rng = random.Random(3)
        build, _ = _packet_mix(world, rng)
        router = _reference_router(world)
        plane = _fresh_plane(world, 2, policy)
        plane.install_faults(plan)
        outcomes = []
        try:
            for _ in range(bursts):
                packets = [build("inter") for _ in range(4)]
                verdicts = plane.process(
                    [p.to_wire() for p in packets],
                    [True] * len(packets),
                    world.as_a.clock(),
                )
                reference = [router.process_outgoing(p) for p in packets]
                outcomes.append(list(zip(verdicts, reference)))
            stats = plane.stats()
        finally:
            plane.close()
        return outcomes, stats

    def _assert_recovered(self, outcomes, stats, *, expect_failures):
        sharded_failures = sum(
            1
            for burst in outcomes
            for verdict, _ in burst
            if verdict.reason is DropReason.SHARD_FAILURE
        )
        for burst in outcomes:
            for verdict, reference in burst:
                if verdict.reason is not DropReason.SHARD_FAILURE:
                    assert verdict == reference
        if expect_failures:
            assert sharded_failures > 0
            assert stats["restarts"] > 0
        else:
            assert sharded_failures == 0
            assert stats["restarts"] == 0
        assert stats["dropped_packets"] == sharded_failures
        assert stats["degraded"] == 0

    # Each kind is scheduled on burst 1 of BOTH shards: which shards see
    # traffic depends on EphID routing, but whichever does will reach
    # burst seq 1 within the run and draw the fault.

    def test_kill_recovers(self):
        outcomes, stats = self._run(FaultPlan({(0, 1): "kill", (1, 1): "kill"}))
        self._assert_recovered(outcomes, stats, expect_failures=True)

    def test_hang_detected_by_timeout(self):
        outcomes, stats = self._run(FaultPlan({(0, 1): "hang", (1, 1): "hang"}))
        self._assert_recovered(outcomes, stats, expect_failures=True)

    def test_error_frame_recovers(self):
        outcomes, stats = self._run(
            FaultPlan({(0, 1): "error", (1, 1): "error"})
        )
        self._assert_recovered(outcomes, stats, expect_failures=True)

    def test_garbage_reply_recovers(self):
        outcomes, stats = self._run(
            FaultPlan({(0, 1): "garbage", (1, 1): "garbage"})
        )
        self._assert_recovered(outcomes, stats, expect_failures=True)

    def test_benign_delay_triggers_no_recovery(self):
        """The false-positive check: a reply delay shorter than the
        timeout must not cost a single packet or restart."""
        plan = FaultPlan(
            {(s, q): Fault("delay", delay=0.01) for s in (0, 1) for q in (1, 3)}
        )
        outcomes, stats = self._run(plan)
        self._assert_recovered(outcomes, stats, expect_failures=False)
        assert plan.injected  # at least one delay actually fired

    def test_dropped_reply_recovers(self):
        """A reply lost in transit is exactly a timeout: the sub-burst
        is dropped-and-counted, the worker restarted, and every later
        delivered verdict matches the oracle again."""
        plan = FaultPlan({(0, 1): "drop", (1, 1): "drop"})
        outcomes, stats = self._run(plan)
        self._assert_recovered(outcomes, stats, expect_failures=True)
        assert stats["stale_replies"] == 0

    def test_duplicate_reply_is_benign(self):
        """Duplicate analogue of the delay false-positive bar: a reply
        delivered twice costs nothing — the stale copy is discarded by
        the seq check, with zero drops, zero restarts, and an exact
        count of discards."""
        plan = FaultPlan(
            {(s, q): "duplicate" for s in (0, 1) for q in (1, 3)}
        )
        outcomes, stats = self._run(plan)
        self._assert_recovered(outcomes, stats, expect_failures=False)
        assert plan.injected  # at least one duplicate actually fired
        # Every injected duplicate surfaced as exactly one discarded
        # stale reply ahead of the same shard's next real reply...
        injected = [entry for entry in plan.injected if entry[2] == "duplicate"]
        # ...except duplicates of a shard's *final* burst, which stay
        # "in the wire" forever (nothing later flushes them).  Faults on
        # burst 1 always have later bursts, so all of those must flush.
        flushed = [entry for entry in injected if entry[1] == 1]
        assert len(flushed) <= stats["stale_replies"] <= len(injected)
        assert stats["stale_replies"] > 0


class TestDegradation:
    """Budget exhaustion must end in exact in-process service, not a wall
    of exceptions."""

    def _degraded_plane(self, world, *, degrade=True):
        policy = SupervisorPolicy(
            reply_timeout=0.4,
            max_restarts=1,
            restart_backoff=0.001,
            degrade_to_inline=degrade,
        )
        plane = _fresh_plane(world, 2, policy)
        # Two kills per shard (routing decides which shards carry
        # traffic): the first kill consumes a shard's only restart, the
        # second exhausts its budget.
        plane.install_faults(
            FaultPlan({(s, q): "kill" for s in (0, 1) for q in (1, 2)})
        )
        return plane

    def test_degrades_to_exact_inprocess_service(self):
        world = _build_world(2)
        rng = random.Random(11)
        build, revocable = _packet_mix(world, rng)
        router = _reference_router(world)
        plane = self._degraded_plane(world)
        try:
            seen_degraded = False
            for burst_no in range(30):
                packets = [build(rng.choice(KINDS)) for _ in range(4)]
                verdicts = plane.process(
                    [p.to_wire() for p in packets],
                    [True] * len(packets),
                    world.as_a.clock(),
                )
                reference = [router.process_outgoing(p) for p in packets]
                if plane.degraded is not None and not seen_degraded:
                    seen_degraded = True
                    degraded_at = burst_no
                if seen_degraded and burst_no > degraded_at:
                    # Past the transition, service is exact again.
                    assert verdicts == reference
                if burst_no == 20:
                    assert seen_degraded, "budget never exhausted"
                    # Revocations still bite in degraded mode: the
                    # fallback reads the live authoritative list.
                    _, owned = revocable[0]
                    world.as_a.revocations.add(owned.ephid, 2**31)
                    plane.revoke_ephid(owned.ephid, 2**31)  # silent no-op
                    drop = plane.process(
                        [
                            revocable[0][0]
                            .stack.make_packet(
                                owned.ephid,
                                Endpoint(world.as_b.aid, bytes(16)),
                                b"x",
                            )
                            .to_wire()
                        ],
                        [True],
                        world.as_a.clock(),
                    )
                    assert drop[0].reason is DropReason.SRC_REVOKED
            stats = plane.stats()
            assert stats["degraded"] == 1
            assert 1 <= stats["restarts"] <= 2  # one budgeted restart per shard
            assert stats["dropped_packets"] > 0
            assert plane.closed  # the worker pool is gone
            plane.barrier()  # no-op, must not raise
        finally:
            plane.close()

    def test_without_fallback_budget_exhaustion_poisons(self):
        from repro.sharding import ShardError

        world = _build_world(2)
        rng = random.Random(12)
        build, _ = _packet_mix(world, rng)
        plane = self._degraded_plane(world, degrade=False)
        try:
            with pytest.raises(ShardError, match="poisoned|unrecoverable"):
                for _ in range(6):
                    packets = [build("inter") for _ in range(4)]
                    plane.process(
                        [p.to_wire() for p in packets],
                        [True] * len(packets),
                        world.as_a.clock(),
                    )
            assert plane._broken is not None
        finally:
            plane.close()


class TestFailedResyncCleanup:
    """A restart attempt whose resync fails must not leak the
    half-respawned worker process across the backoff (or past the final
    give-up): the supervisor discards it so the next attempt — or the
    poison verdict — starts from a clean slate."""

    def test_failed_resync_kills_half_respawned_worker(self):
        from repro.sharding import ShardError

        world = _build_world(2)
        rng = random.Random(21)
        build, _ = _packet_mix(world, rng)
        policy = SupervisorPolicy(
            reply_timeout=0.4,
            max_restarts=2,
            restart_backoff=0.001,
            degrade_to_inline=False,
        )
        plane = _fresh_plane(world, 2, policy)
        try:
            # Warm burst: all workers up and serving before the sabotage.
            packets = [build("inter") for _ in range(4)]
            plane.process(
                [p.to_wire() for p in packets],
                [True] * len(packets),
                world.as_a.clock(),
            )

            # Sabotage resync: every restart attempt respawns a worker,
            # then blows up before it can be handed its state.
            def broken_snapshot(plan, shard):
                raise RuntimeError("resync sabotaged")

            plane.supervisor._state.shard_snapshot = broken_snapshot
            victim = plane._pool.worker(0)
            plane._pool.kill_worker(0)

            # Drive traffic until the dead shard is noticed; with no
            # inline fallback the plane poisons once the budget is spent.
            with pytest.raises(ShardError):
                for _ in range(6):
                    packets = [build("inter") for _ in range(4)]
                    plane.process(
                        [p.to_wire() for p in packets],
                        [True] * len(packets),
                        world.as_a.clock(),
                    )

            fresh = plane._pool.worker(0)
            assert fresh is not victim  # a respawn did happen
            fresh.join(timeout=5.0)
            assert not fresh.is_alive(), (
                "half-respawned worker left running after its resync failed"
            )
            failures = plane.supervisor.failures
            assert any("resync sabotaged" in f for _, f in failures)
        finally:
            plane.close()


class TestCrashStormScenario:
    def test_scenario_builds_and_carries_chaos(self):
        from dataclasses import replace

        config = replace(
            ApnaConfig(),
            forwarding_shards=2,
            forwarding_batch_size=8,
            shard_reply_timeout=0.4,
            shard_restart_backoff=0.001,
        )
        world = scenarios.build("crash-storm:2", seed=13, config=config)
        try:
            plane = world.asys("a").shard_pool
            assert plane is not None and plane.nshards == 2
            plan = FaultPlan({(0, 0): "kill"})
            plane.install_faults(plan)
            client = world.host("a0")
            server = world.host("b0")
            serving = server.acquire_ephid_direct()
            client.connect(serving.cert, early_data=b"storm")
            world.run()
            # The kill hit the very first burst; the session still
            # completes once the transport retries (or later bursts pass)
            # — at minimum the world neither hung nor poisoned.
            assert plan.injected or plane.stats()["restarts"] == 0
            stats = plane.stats()
            assert stats["degraded"] == 0
        finally:
            world.close()

    def test_scenario_validates_argument(self):
        from repro.topology import TopologyError

        with pytest.raises(TopologyError, match="at least one host"):
            scenarios.spec("crash-storm:0")
