"""Tests for per-packet EphID demultiplexing (VIII-A, reference [23])."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.onetime import (
    DEFAULT_WINDOW,
    DemuxError,
    FlowTagger,
    TagDemuxer,
    TAG_SIZE,
    derive_demux_key,
    flow_tag,
    pack_tagged,
    unpack_tagged,
)
from repro.core.session import Session


@pytest.fixture()
def session_pair(world):
    alice = world.hosts["alice"]
    bob = world.hosts["bob"]
    alice_owned = alice.acquire_ephid_direct()
    bob_owned = bob.acquire_ephid_direct()
    sender = Session(alice_owned, bob_owned.cert)
    receiver = Session(bob_owned, alice_owned.cert)
    return world, alice, bob, sender, receiver


class TestTagDerivation:
    def test_both_ends_derive_same_tags(self, session_pair):
        _w, _a, _b, sender, receiver = session_pair
        assert derive_demux_key(sender) == derive_demux_key(receiver)
        key = derive_demux_key(sender)
        assert flow_tag(key, 0) == flow_tag(key, 0)
        assert flow_tag(key, 0) != flow_tag(key, 1)

    def test_tagger_matches_flow_tag(self, session_pair):
        _w, _a, _b, sender, _receiver = session_pair
        tagger = FlowTagger(sender)
        key = derive_demux_key(sender)
        assert [tagger.next_tag() for _ in range(5)] == [
            flow_tag(key, i) for i in range(5)
        ]
        assert tagger.issued == 5

    def test_tags_unique_across_sessions(self, session_pair):
        world, alice, bob, sender, _receiver = session_pair
        other = Session(
            alice.acquire_ephid_direct(), bob.acquire_ephid_direct().cert
        )
        tags_one = {FlowTagger(sender).next_tag()}
        tags_two = {FlowTagger(other).next_tag()}
        assert tags_one.isdisjoint(tags_two)


class TestTagDemuxer:
    def test_in_order_stream(self, session_pair):
        _w, _a, _b, sender, receiver = session_pair
        demux = TagDemuxer()
        demux.register(receiver)
        tagger = FlowTagger(sender)
        for _ in range(3 * DEFAULT_WINDOW):  # far past the initial window
            assert demux.match(tagger.next_tag()) is receiver
        assert demux.matched == 3 * DEFAULT_WINDOW

    def test_reuse_rejected(self, session_pair):
        _w, _a, _b, sender, receiver = session_pair
        demux = TagDemuxer()
        demux.register(receiver)
        tag = FlowTagger(sender).next_tag()
        demux.match(tag)
        with pytest.raises(DemuxError):
            demux.match(tag)

    def test_unknown_tag_rejected(self, session_pair):
        _w, _a, _b, _sender, receiver = session_pair
        demux = TagDemuxer()
        demux.register(receiver)
        with pytest.raises(DemuxError):
            demux.match(b"\x00" * TAG_SIZE)
        assert demux.unmatched == 1

    def test_reordering_within_window(self, session_pair):
        _w, _a, _b, sender, receiver = session_pair
        demux = TagDemuxer(window=8)
        demux.register(receiver)
        tagger = FlowTagger(sender)
        tags = [tagger.next_tag() for _ in range(8)]
        for tag in reversed(tags):  # fully reversed burst
            assert demux.match(tag) is receiver

    def test_too_old_tag_rejected(self, session_pair):
        _w, _a, _b, sender, receiver = session_pair
        demux = TagDemuxer(window=4)
        demux.register(receiver)
        tagger = FlowTagger(sender)
        tags = [tagger.next_tag() for _ in range(20)]
        for index in (1, 2, 3, 7):  # advance; the floor moves past 0
            demux.match(tags[index])
        with pytest.raises(DemuxError):
            demux.match(tags[0])
        # ...but tags still inside the trailing window remain matchable.
        assert demux.match(tags[5]) is receiver

    def test_jump_beyond_horizon_rejected(self, session_pair):
        # A tag further ahead than the precomputed window is unknown —
        # the window extends on delivery, like any transport window.
        _w, _a, _b, sender, receiver = session_pair
        demux = TagDemuxer(window=4)
        demux.register(receiver)
        tagger = FlowTagger(sender)
        tags = [tagger.next_tag() for _ in range(20)]
        with pytest.raises(DemuxError):
            demux.match(tags[15])

    def test_two_sessions_demux_independently(self, session_pair):
        world, alice, bob, sender, receiver = session_pair
        other_local = bob.acquire_ephid_direct()
        other_peer = alice.acquire_ephid_direct()
        other_recv = Session(other_local, other_peer.cert)
        other_send = Session(other_peer, other_local.cert)
        demux = TagDemuxer()
        demux.register(receiver)
        demux.register(other_recv)
        assert demux.sessions == 2
        assert demux.match(FlowTagger(sender).next_tag()) is receiver
        assert demux.match(FlowTagger(other_send).next_tag()) is other_recv

    def test_unregister_removes_all_tags(self, session_pair):
        _w, _a, _b, sender, receiver = session_pair
        demux = TagDemuxer(window=16)
        demux.register(receiver)
        assert demux.live_tags() == 16
        demux.unregister(receiver)
        assert demux.live_tags() == 0
        with pytest.raises(DemuxError):
            demux.match(FlowTagger(sender).next_tag())

    def test_register_idempotent(self, session_pair):
        _w, _a, _b, _sender, receiver = session_pair
        demux = TagDemuxer(window=16)
        demux.register(receiver)
        demux.register(receiver)
        assert demux.sessions == 1
        assert demux.live_tags() == 16

    def test_memory_bounded_by_two_windows(self, session_pair):
        _w, _a, _b, sender, receiver = session_pair
        demux = TagDemuxer(window=8)
        demux.register(receiver)
        tagger = FlowTagger(sender)
        for _ in range(100):
            demux.match(tagger.next_tag())
        assert demux.live_tags() <= 2 * 8

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            TagDemuxer(window=0)

    @given(st.permutations(list(range(12))))
    @settings(max_examples=25, deadline=None)
    def test_any_order_within_one_window_delivers_all(self, order):
        # Property: if all packets of a burst fit in one window, every
        # permutation of their arrival demultiplexes completely.
        from repro.core.keys import EphIdKeyPair
        from repro.core.certs import EphIdCertificate
        from repro.core.keys import SigningKeyPair
        from repro.crypto.rng import DeterministicRng

        rng = DeterministicRng(99)
        signer = SigningKeyPair.generate(rng)

        def owned(ephid_byte):
            keypair = EphIdKeyPair.generate(rng)
            cert = EphIdCertificate.issue(
                signer,
                ephid=bytes([ephid_byte]) * 16,
                exp_time=2**31,
                dh_public=keypair.exchange.public,
                sig_public=keypair.signing.public,
                aid=1,
                aa_ephid=bytes(16),
            )
            from repro.core.session import OwnedEphId

            return OwnedEphId(cert, keypair)

        local, peer = owned(1), owned(2)
        recv = Session(local, peer.cert)
        send = Session(peer, local.cert)
        demux = TagDemuxer(window=12)
        demux.register(recv)
        tagger = FlowTagger(send)
        tags = [tagger.next_tag() for _ in range(12)]
        for position in order:
            assert demux.match(tags[position]) is recv


class TestWireFormat:
    def test_pack_unpack_roundtrip(self):
        tag, sealed = b"\x07" * TAG_SIZE, b"ciphertext"
        assert unpack_tagged(pack_tagged(tag, sealed)) == (tag, sealed)

    def test_pack_rejects_bad_tag(self):
        with pytest.raises(DemuxError):
            pack_tagged(b"short", b"x")

    def test_unpack_rejects_short(self):
        with pytest.raises(DemuxError):
            unpack_tagged(b"tiny")


class TestEndToEnd:
    def test_per_packet_ephids_with_demux(self, world):
        # The full VIII-A story: fresh source EphID on every packet, the
        # receiver demultiplexes by flow tag, and an observer sees no two
        # packets with the same source identifier.
        alice = world.hosts["alice"]
        bob = world.hosts["bob"]

        observed_sources = []
        original = bob.handle_frame

        def observe(frame_bytes, *, from_node):
            from repro.wire.apna import ApnaPacket

            observed_sources.append(
                ApnaPacket.from_wire(frame_bytes).header.src_ephid
            )
            original(frame_bytes, from_node=from_node)

        bob.handle_frame = observe

        bob_owned = bob.acquire_ephid_direct()
        received = []
        bob.listen(80, lambda session, transport, data: received.append(data))
        session = alice.connect(bob_owned.cert, dst_port=80)
        world.network.run()
        server_session = next(iter(bob.sessions.values()))
        bob.ota_listen(server_session)

        payloads = [f"packet {i}".encode() for i in range(10)]
        for payload in payloads:
            alice.send_data_ota(session, payload, dst_port=80)
        world.network.run()

        assert received == payloads
        # Every OTA packet used a distinct, single-use source EphID.
        ota_sources = observed_sources[-10:]
        assert len(set(ota_sources)) == 10

    def test_ota_to_unregistered_session_dropped(self, world):
        alice = world.hosts["alice"]
        bob = world.hosts["bob"]
        bob_owned = bob.acquire_ephid_direct()
        received = []
        bob.listen(80, lambda session, transport, data: received.append(data))
        session = alice.connect(bob_owned.cert, dst_port=80)
        world.network.run()
        # bob never called ota_listen.
        alice.send_data_ota(session, b"lost", dst_port=80)
        world.network.run()
        assert received == []
        assert bob.demux.unmatched == 1
