"""X25519 tests pinned to the RFC 7748 vectors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.x25519 import BASE_POINT, public_key, shared_secret, x25519


def test_rfc7748_vector_1():
    scalar = bytes.fromhex(
        "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4"
    )
    u = bytes.fromhex(
        "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c"
    )
    assert x25519(scalar, u).hex() == (
        "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
    )


def test_rfc7748_vector_2():
    scalar = bytes.fromhex(
        "4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d"
    )
    u = bytes.fromhex(
        "e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493"
    )
    assert x25519(scalar, u).hex() == (
        "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957"
    )


def test_rfc7748_diffie_hellman():
    alice_priv = bytes.fromhex(
        "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a"
    )
    bob_priv = bytes.fromhex(
        "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb"
    )
    alice_pub = public_key(alice_priv)
    bob_pub = public_key(bob_priv)
    assert alice_pub.hex() == (
        "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a"
    )
    assert bob_pub.hex() == (
        "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f"
    )
    shared = bytes.fromhex(
        "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742"
    )
    assert shared_secret(alice_priv, bob_pub) == shared
    assert shared_secret(bob_priv, alice_pub) == shared


def test_rfc7748_iterated_once():
    k = BASE_POINT
    u = BASE_POINT
    result = x25519(k, u)
    assert result.hex() == (
        "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079"
    )


def test_low_order_point_rejected():
    with pytest.raises(ValueError):
        shared_secret(bytes([1] + [0] * 31), bytes(32))  # u = 0 is low order


def test_scalar_length_enforced():
    with pytest.raises(ValueError):
        x25519(bytes(31), BASE_POINT)
    with pytest.raises(ValueError):
        x25519(bytes(32), bytes(31))


@settings(max_examples=10, deadline=None)
@given(
    a=st.binary(min_size=32, max_size=32),
    b=st.binary(min_size=32, max_size=32),
)
def test_diffie_hellman_agreement(a, b):
    assert x25519(a, public_key(b)) == x25519(b, public_key(a))


def test_clamping_makes_cofactor_irrelevant():
    # Two scalars differing only in clamped bits produce the same result.
    scalar = bytearray(b"\x42" * 32)
    variant = bytearray(scalar)
    variant[0] |= 0x07  # low bits are cleared by clamping
    variant[31] |= 0x80  # top bit is cleared by clamping
    assert x25519(bytes(scalar)) == x25519(bytes(variant))
