"""Regression audit: authentication tags are never compared with ``==``.

A naive ``==`` on a MAC/tag short-circuits at the first differing byte,
leaking the mismatch position through timing (the classic remote
timing-oracle forgery).  Every tag comparison in the crypto package and
its hot-path consumers must go through :func:`repro.crypto.util.ct_eq`
(which delegates to :func:`hmac.compare_digest`).

The audit walks the ASTs of the audited modules and flags any ``==`` /
``!=`` whose operand is a name or attribute that looks like a tag or
MAC.  Length checks (``len(tag) != 4``) are fine — the operand there is
the ``len()`` call, not the tag itself — as are comparisons of
non-secret values.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Modules holding tag comparisons on secret-dependent hot paths.
AUDITED = sorted(SRC.glob("crypto/*.py")) + [
    SRC / "core" / "ephid.py",
    SRC / "core" / "border_router.py",
    SRC / "core" / "icmp_crypto.py",
    SRC / "pathval" / "opt.py",
    SRC / "pathval" / "passport.py",
    SRC / "pathval" / "shutoff_ext.py",
]

#: Identifier substrings that mark a value as an authentication tag.
#: "expected"/"presented" catch the `expected = cmac(...); presented != expected`
#: idiom where neither local is named after the tag itself.
TAG_TOKENS = ("tag", "mac", "digest", "expected", "presented")


def _is_tag_operand(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        name = node.id.lower()
    elif isinstance(node, ast.Attribute):
        name = node.attr.lower()
    else:
        return False
    # Length checks and key-identity guards (e.g. ``enc_key == mac_key``)
    # compare non-secret-position values, not tags.
    if "length" in name or "size" in name or "key" in name:
        return False
    return any(token in name for token in TAG_TOKENS)


def _violations(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    found = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        operands = [node.left, *node.comparators]
        if any(_is_tag_operand(operand) for operand in operands):
            found.append(f"{path.relative_to(SRC.parent.parent)}:{node.lineno}")
    return found


def test_audited_files_exist():
    for path in AUDITED:
        assert path.is_file(), f"audited module moved or deleted: {path}"


def test_no_equality_comparison_on_tags():
    violations = [v for path in AUDITED for v in _violations(path)]
    assert not violations, (
        "authentication tags compared with ==/!= (use repro.crypto.util.ct_eq "
        "or hmac.compare_digest):\n  " + "\n  ".join(violations)
    )
