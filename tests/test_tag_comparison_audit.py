"""Regression audit: authentication tags are never compared with ``==``.

A naive ``==`` on a MAC/tag short-circuits at the first differing byte,
leaking the mismatch position through timing (the classic remote
timing-oracle forgery).  Every tag comparison in the crypto package and
its hot-path consumers must go through :func:`repro.crypto.util.ct_eq`
(which delegates to :func:`hmac.compare_digest`).

Since PR 9 the walk itself lives in :mod:`repro.analysis` as the
``ct-compare`` rule (so it runs under the unified analyzer with
suppressions and a baseline); this file remains as the historical
tier-1 anchor — a thin wrapper that pins the rule's scope and proves
the detector still fires on the known-bad idioms PR 3 fixed.
"""

from repro.analysis import RULES, Module, run_analysis
from repro.analysis.engine import DEFAULT_ROOT

RULE = RULES["ct-compare"]


def test_audited_files_exist():
    for pattern in RULE.scope:
        matches = sorted(DEFAULT_ROOT.glob(pattern))
        assert matches, f"audited scope matches nothing: {pattern}"
        for path in matches:
            assert path.is_file(), f"audited module moved or deleted: {path}"


def test_no_equality_comparison_on_tags():
    report = run_analysis(rules=["ct-compare"], baseline=set())
    assert not report.findings, (
        "authentication tags compared with ==/!= (use repro.crypto.util.ct_eq "
        "or hmac.compare_digest):\n  "
        + "\n  ".join(f.render() for f in report.findings)
    )


def test_audit_catches_tag_comparison():
    """The detector itself must fire on the pre-PR-3 idioms."""
    direct = "def check(tag, other):\n    return tag == other\n"
    module = Module.from_source(direct, "crypto/fixture.py")
    assert list(RULE.check_module(module)), "audit no longer detects tag =="

    # The `presented != expected` idiom (PassportVerifier, PR 3): neither
    # local is named after the tag itself.
    renamed = (
        "def verify(presented, data, key):\n"
        "    expected = cmac(key, data)\n"
        "    return not (presented != expected)\n"
    )
    module = Module.from_source(renamed, "crypto/fixture.py")
    assert list(RULE.check_module(module)), (
        "audit no longer detects the presented/expected idiom"
    )


def test_length_checks_are_not_flagged():
    good = (
        "def check(tag):\n"
        "    if len(tag) != 4:\n"
        "        return False\n"
        "    return tag_length == 4 and enc_key == mac_key\n"
    )
    module = Module.from_source(good, "crypto/fixture.py")
    assert not list(RULE.check_module(module))
