"""Revocation racing in-flight traffic (paper Sections IV-E, VIII-G2).

The race the evaluation pack's ``revocation-wave`` preset exercises at
scale, pinned down here at the single-router level: packets are *built*
(sealed, MAC'd, queued) before the revocation lands, and the contract
is that the verdict depends only on the revocation state **at
verification time** — an in-flight packet carrying a just-revoked
EphID drops with ``SRC_REVOKED`` no matter when it was made, and the
cut-over is exact at the packet where the revocation interleaved.

Both crypto backends × both state backends: the columnar
``ColumnarRevocationList`` must be race-indistinguishable from the
object-store original.
"""

import pytest

from repro.core.border_router import Action, BorderRouter, DropReason
from repro.core.config import ApnaConfig
from repro.crypto import backend as crypto_backend
from repro.wire.apna import Endpoint

from tests.conftest import build_world

BACKENDS = crypto_backend.available_backends()
STATE_BACKENDS = ("object", "columnar")

FAR_FUTURE = 1e12


@pytest.fixture(
    params=[(c, s) for c in BACKENDS for s in STATE_BACKENDS],
    ids=lambda p: f"{p[0]}-{p[1]}",
)
def race_world(request):
    """One world per crypto-backend × state-backend combination."""
    crypto, state_backend = request.param
    with crypto_backend.use_backend(crypto):
        world = build_world(config=ApnaConfig(state_backend=state_backend))
        world.crypto_backend = crypto
    return world


def _router(world, clock=None):
    """A fresh border router sharing the AS's live mutable state."""
    return BorderRouter(
        world.as_a.aid,
        world.as_a.codec,
        world.as_a.hostdb,
        world.as_a.revocations,
        clock or world.network.scheduler.clock(),
        packet_mac_size=world.config.packet_mac_size,
        replay_filter=None,
    )


def _in_flight(world, src_ephid, count):
    """``count`` pre-built packets — sealed and MAC'd before any revoke."""
    with crypto_backend.use_backend(world.crypto_backend):
        alice = world.hosts["alice"]
        bob_ephid = world.hosts["bob"].acquire_ephid_direct().ephid
        dst = Endpoint(world.as_b.aid, bob_ephid)
        return [
            alice.stack.make_packet(src_ephid, dst, b"in-flight", nonce=n + 1)
            for n in range(count)
        ]


def test_revocation_cuts_over_exactly_mid_stream(race_world):
    """The verdict flips at precisely the packet where the revoke lands."""
    world = race_world
    src = world.hosts["alice"].acquire_ephid_direct()
    packets = _in_flight(world, src.ephid, 10)
    router = _router(world)
    with crypto_backend.use_backend(world.crypto_backend):
        verdicts = []
        for i, packet in enumerate(packets):
            if i == 6:  # the revocation interleaves here
                world.as_a.revocations.add(src.ephid, FAR_FUTURE)
            verdicts.append(router.process_outgoing(packet))
    # Build time is irrelevant: every packet was made before the revoke.
    assert [v.action for v in verdicts[:6]] == [Action.FORWARD_INTER] * 6
    assert [v.reason for v in verdicts[6:]] == [DropReason.SRC_REVOKED] * 4
    assert router.forwarded_inter == 6
    assert router.drops[DropReason.SRC_REVOKED] == 4


def test_revocation_between_batches_is_batch_exact(race_world):
    """A whole in-flight batch flips at once when the revoke precedes it."""
    world = race_world
    src = world.hosts["alice"].acquire_ephid_direct()
    packets = _in_flight(world, src.ephid, 8)
    router = _router(world)
    with crypto_backend.use_backend(world.crypto_backend):
        before = router.process_batch(packets[:4])
        world.as_a.revocations.add(src.ephid, FAR_FUTURE)
        after = router.process_batch(packets[4:])
    assert all(v.action is Action.FORWARD_INTER for v in before)
    assert all(v.reason is DropReason.SRC_REVOKED for v in after)
    assert router.drops[DropReason.SRC_REVOKED] == 4


def test_hid_revocation_fells_every_ephid_at_once(race_world):
    """Revoking the HID invalidates all its in-flight EphIDs together."""
    world = race_world
    alice = world.hosts["alice"]
    first = alice.acquire_ephid_direct()
    second = alice.acquire_ephid_direct()
    flight = _in_flight(world, first.ephid, 2) + _in_flight(
        world, second.ephid, 2
    )
    router = _router(world)
    with crypto_backend.use_backend(world.crypto_backend):
        assert router.process_outgoing(flight[0]).action is Action.FORWARD_INTER
        hid = world.as_a.hostdb.find_by_subscriber(alice.subscriber_id).hid
        world.as_a.hostdb.revoke_hid(hid)
        verdicts = [router.process_outgoing(p) for p in flight[1:]]
    assert [v.reason for v in verdicts] == [DropReason.SRC_HID_INVALID] * 3
    assert router.drops[DropReason.SRC_HID_INVALID] == 3


def test_pruned_revocation_cannot_resurrect_a_forward(race_world):
    """Section VIII-G2 pruning: the expiry check closes the prune race.

    A revocation entry is pruned once its EphID's own lifetime is over —
    safe only because the expiry check runs *before* the revocation
    check, so the packet keeps dropping (as ``SRC_EXPIRED``) after the
    entry is gone.  This pins that ordering.
    """
    world = race_world
    alice = world.hosts["alice"]
    with crypto_backend.use_backend(world.crypto_backend):
        codec = world.as_a.codec
        hid = world.as_a.hostdb.find_by_subscriber(alice.subscriber_id).hid
    # The EphID's lifetime ended at t=0; the router verifies at t=10.
    now = 10.0
    with crypto_backend.use_backend(world.crypto_backend):
        stale = codec.seal(hid, exp_time=0, iv=world.as_a.ivs.next_iv())
    world.as_a.revocations.add(stale, exp_time=0)
    assert world.as_a.revocations.contains(stale)
    packets = _in_flight(world, stale, 2)
    router = _router(world, clock=lambda: now)
    with crypto_backend.use_backend(world.crypto_backend):
        while_listed = router.process_outgoing(packets[0])
        # The router auto-prunes as it goes; force it for the backends
        # that defer, then verify the verdict is unchanged without the
        # list entry.
        world.as_a.revocations.prune(now)
        after_prune = router.process_outgoing(packets[1])
    assert while_listed.reason is DropReason.SRC_EXPIRED
    assert after_prune.reason is DropReason.SRC_EXPIRED
    assert not world.as_a.revocations.contains(stale)
