"""Tests for the Fig. 5 shutoff protocol (acceptance and every rejection)."""

import pytest

from repro.core.messages import ShutoffRequest
from repro.wire.apna import ApnaPacket, Endpoint


@pytest.fixture()
def env(world):
    alice = world.hosts["alice"]  # the (malicious) sender in AS 100
    bob = world.hosts["bob"]  # the complaining recipient in AS 200
    alice_owned = alice.acquire_ephid_direct()
    bob_owned = bob.acquire_ephid_direct()
    offending = alice.stack.make_packet(
        alice_owned.ephid, Endpoint(200, bob_owned.ephid), b"unwanted traffic"
    )
    return world, alice, bob, alice_owned, bob_owned, offending


class TestShutoffAccepted:
    def test_valid_request_revokes_source_ephid(self, env):
        world, alice, bob, alice_owned, bob_owned, offending = env
        request = bob.stack.build_shutoff_request(offending.to_wire(), bob_owned)
        response = world.as_a.aa.handle_shutoff(request)
        assert response.accepted
        assert world.as_a.revocations.contains(alice_owned.ephid)
        assert world.as_a.aa.accepted == 1

    def test_revocation_blocks_future_packets(self, env):
        world, alice, bob, alice_owned, bob_owned, offending = env
        request = bob.stack.build_shutoff_request(offending.to_wire(), bob_owned)
        world.as_a.aa.handle_shutoff(request)
        from repro.core.border_router import DropReason

        verdict = world.as_a.br.process_outgoing(offending)
        assert verdict.reason is DropReason.SRC_REVOKED

    def test_other_ephids_of_host_unaffected(self, env):
        # Fate-sharing is per-EphID (Section III-B): only the reported
        # EphID dies.
        world, alice, bob, alice_owned, bob_owned, offending = env
        other_owned = alice.acquire_ephid_direct()
        request = bob.stack.build_shutoff_request(offending.to_wire(), bob_owned)
        world.as_a.aa.handle_shutoff(request)
        packet = alice.stack.make_packet(
            other_owned.ephid, Endpoint(200, bob_owned.ephid), b"fresh flow"
        )
        from repro.core.border_router import Action

        verdict = world.as_a.br.process_outgoing(packet)
        assert verdict.action is Action.FORWARD_INTER

    def test_repeat_offender_loses_hid(self, world):
        # Section VIII-G2: too many revocations revoke the HID itself.
        from repro.core.config import ApnaConfig
        from tests.conftest import build_world

        small = build_world(config=ApnaConfig(revocation_threshold=3))
        alice, bob = small.hosts["alice"], small.hosts["bob"]
        bob_owned = bob.acquire_ephid_direct()
        for i in range(3):
            owned = alice.acquire_ephid_direct()
            offending = alice.stack.make_packet(
                owned.ephid, Endpoint(200, bob_owned.ephid), b"spam"
            )
            request = bob.stack.build_shutoff_request(offending.to_wire(), bob_owned)
            assert small.as_a.aa.handle_shutoff(request).accepted
        record = small.as_a.hostdb.find_by_subscriber(alice.subscriber_id)
        assert record is None  # the HID is gone
        assert len(small.as_a.aa.policy.hids_revoked) == 1


class TestShutoffRejected:
    def test_non_recipient_cannot_shutoff(self, env):
        # The DoS defence: only the owner of the packet's destination
        # EphID may request a shutoff.
        world, alice, bob, alice_owned, bob_owned, offending = env
        mallory_owned = bob.acquire_ephid_direct()  # a different EphID
        request = bob.stack.build_shutoff_request(offending.to_wire(), mallory_owned)
        response = world.as_a.aa.handle_shutoff(request)
        assert not response.accepted
        assert response.reason == "requester-not-recipient"
        assert not world.as_a.revocations.contains(alice_owned.ephid)

    def test_rogue_packet_rejected(self, env):
        # A recipient cannot fabricate a packet the source never sent:
        # the packet MAC (made with kHA of the source) will not verify.
        world, alice, bob, alice_owned, bob_owned, offending = env
        fake = ApnaPacket(
            offending.header.with_mac(b"\x00" * 8), b"never actually sent"
        )
        request = bob.stack.build_shutoff_request(fake.to_wire(), bob_owned)
        response = world.as_a.aa.handle_shutoff(request)
        assert not response.accepted
        assert response.reason == "packet-mac-invalid"

    def test_bad_signature_rejected(self, env):
        world, alice, bob, alice_owned, bob_owned, offending = env
        good = bob.stack.build_shutoff_request(offending.to_wire(), bob_owned)
        request = ShutoffRequest(
            packet=good.packet, signature=bytes(64), cert=good.cert
        )
        response = world.as_a.aa.handle_shutoff(request)
        assert not response.accepted
        assert response.reason == "signature-invalid"

    def test_forged_cert_rejected(self, env):
        # Certificate not signed by the requester's AS (RPKI check).
        world, alice, bob, alice_owned, bob_owned, offending = env
        from repro.core.certs import EphIdCertificate
        from repro.core.keys import SigningKeyPair

        rogue_signer = SigningKeyPair.generate(world.rng)
        forged_cert = EphIdCertificate.issue(
            rogue_signer,
            ephid=bob_owned.cert.ephid,
            exp_time=bob_owned.cert.exp_time,
            dh_public=bob_owned.cert.dh_public,
            sig_public=bob_owned.cert.sig_public,
            aid=bob_owned.cert.aid,
            aa_ephid=bob_owned.cert.aa_ephid,
        )
        unsigned = ShutoffRequest(packet=offending.to_wire(), signature=b"", cert=forged_cert)
        signature = bob_owned.keypair.signing.sign(unsigned.signed_bytes())
        request = ShutoffRequest(
            packet=offending.to_wire(), signature=signature, cert=forged_cert
        )
        response = world.as_a.aa.handle_shutoff(request)
        assert not response.accepted
        assert response.reason == "cert-invalid"

    def test_wrong_as_rejects(self, env):
        # The AA only handles shutoffs for its own customers.
        world, alice, bob, alice_owned, bob_owned, offending = env
        request = bob.stack.build_shutoff_request(offending.to_wire(), bob_owned)
        response = world.as_b.aa.handle_shutoff(request)
        assert not response.accepted
        assert response.reason == "not-our-source"

    def test_expired_source_ephid_rejected(self, env):
        world, alice, bob, alice_owned, bob_owned, offending = env
        record = world.as_a.hostdb.find_by_subscriber(alice.subscriber_id)
        stale_ephid = world.as_a.codec.seal(
            hid=record.hid, exp_time=5, iv=world.as_a.ivs.next_iv()
        )
        stale_packet = alice.stack.make_packet(
            stale_ephid, Endpoint(200, bob_owned.ephid), b"old"
        )
        world.network.run_until(10.0)
        request = bob.stack.build_shutoff_request(stale_packet.to_wire(), bob_owned)
        response = world.as_a.aa.handle_shutoff(request)
        assert not response.accepted
        assert response.reason == "src-ephid-expired"

    def test_garbage_packet_rejected(self, env):
        world, alice, bob, alice_owned, bob_owned, offending = env
        request = bob.stack.build_shutoff_request(b"\x00" * 10, bob_owned)
        response = world.as_a.aa.handle_shutoff(request)
        assert not response.accepted
        assert response.reason == "packet-too-short"

    def test_rejection_stats(self, env):
        world, alice, bob, alice_owned, bob_owned, offending = env
        request = bob.stack.build_shutoff_request(b"\x00" * 10, bob_owned)
        world.as_a.aa.handle_shutoff(request)
        world.as_a.aa.handle_shutoff(request)
        assert world.as_a.aa.rejected["packet-too-short"] == 2


class TestReceiveOnlyInteraction:
    def test_receive_only_ephid_cannot_be_shut_off(self, env):
        # Receive-only EphIDs never appear as a source, so no valid
        # shutoff request can be constructed against them (Section VII-A):
        # any packet claiming one as source fails the MAC/ownership checks.
        world, alice, bob, alice_owned, bob_owned, offending = env
        from repro.core.certs import FLAG_RECEIVE_ONLY

        ro = bob.acquire_ephid_direct(flags=FLAG_RECEIVE_ONLY)
        # Mallory (alice here) fabricates a packet pretending the RO EphID
        # sent her traffic, then "complains" about it to AS-B's AA.
        fake = ApnaPacket(
            alice.stack.make_packet(
                alice_owned.ephid, Endpoint(200, ro.ephid), b"x"
            ).header.reversed(),
            b"fabricated",
        )
        request = alice.stack.build_shutoff_request(fake.to_wire(), alice_owned)
        response = world.as_b.aa.handle_shutoff(request)
        assert not response.accepted
