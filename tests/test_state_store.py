"""The repro.state columnar stores vs. the original object stores.

The contract (see :mod:`repro.state`): ``ColumnarHostDatabase`` /
``ColumnarRevocationList`` / ``ColumnarShardView`` are drop-in duck
types for the object-backed stores — same results, same error types and
messages, same observable ordering — and the :class:`ShardSnapshot`
codec produces bit-identical bytes from either backend, so a worker
resynced over ``MSG_RESYNC`` ends up in the same state no matter which
pair of backends sits on either side of the pipe.
"""

import pytest

from repro.core.errors import RevokedError, UnknownHostError
from repro.core.hostdb import FIRST_HOST_HID, HostRecord
from repro.core.keys import HostAsKeys
from repro.sharding import wire
from repro.sharding.plan import ShardPlan
from repro.sharding.worker import ShardHostView, ShardSpec, ShardState
from repro.state import (
    ColumnarRevocationList,
    ColumnarShardView,
    ShardSnapshot,
    build_shard_snapshot,
    make_host_database,
    make_revocation_list,
    population_key_material,
)
from repro.state.snapshot import pack_f64s, pack_u32s

SERVICE_HIDS = (3, 1, 2, 4, 5)  # AA, registry, MS, DNS, router order


def _keys(i: int) -> HostAsKeys:
    return HostAsKeys(control=bytes([i % 251]) * 16, packet_mac=bytes([i % 249]) * 16)


def _outcome(fn):
    """Normalize a call to a comparable (status, payload) pair."""
    try:
        return ("ok", fn())
    except Exception as exc:  # noqa: BLE001 - parity includes error identity
        return ("err", type(exc), str(exc))


def _describe(record):
    """A backend-neutral view of a host record/row proxy."""
    if record is None:
        return None
    return (
        record.hid,
        record.keys.control,
        record.keys.packet_mac,
        record.subscriber_id,
        record.revoked,
        record.ephids_issued,
        record.ephids_revoked,
    )


def _describe_outcome(outcome):
    if outcome[0] == "ok":
        return ("ok", _describe(outcome[1]))
    return outcome


def _assert_same_db(obj, col, hids, subscribers):
    assert len(obj) == len(col)
    assert obj.total_registered == col.total_registered
    for hid in hids:
        assert obj.is_valid(hid) == col.is_valid(hid), hid
        assert (hid in obj) == (hid in col)
        left = _describe_outcome(_outcome(lambda: obj.get(hid)))
        right = _describe_outcome(_outcome(lambda: col.get(hid)))
        assert left == right, hid
    for subscriber in subscribers:
        assert _describe(obj.find_by_subscriber(subscriber)) == _describe(
            col.find_by_subscriber(subscriber)
        ), subscriber
    obj_rows = [_describe(record) for record in obj.records()]
    col_rows = [_describe(record) for record in col.records()]
    assert obj_rows == col_rows


class TestHostDatabaseDifferential:
    """Identical op sequences leave both backends observably identical."""

    def _populate(self, db, hosts=8):
        for i, hid in enumerate(SERVICE_HIDS):
            db.register(HostRecord(hid=hid, keys=_keys(100 + i)))
        hids = []
        for i in range(hosts):
            hid = db.allocate_hid()
            db.register(
                HostRecord(hid=hid, keys=_keys(10 + i), subscriber_id=700 + i)
            )
            hids.append(hid)
        return hids

    def test_register_get_revoke_parity(self):
        obj = make_host_database("object")
        col = make_host_database("columnar")
        obj_hids = self._populate(obj)
        col_hids = self._populate(col)
        assert obj_hids == col_hids == list(
            range(FIRST_HOST_HID, FIRST_HOST_HID + 8)
        )
        all_hids = list(SERVICE_HIDS) + obj_hids + [0xDEAD_0000]
        subscribers = list(range(700, 710))
        _assert_same_db(obj, col, all_hids, subscribers)

        for db in (obj, col):
            db.revoke_hid(obj_hids[2])
            db.revoke_hid(obj_hids[2])  # idempotent re-revoke
            db.revoke_hid(4)  # a service endpoint
        _assert_same_db(obj, col, all_hids, subscribers)

        # Error parity: unknown HIDs, duplicate HIDs, duplicate subscribers.
        for op in (
            lambda db: db.revoke_hid(0xDEAD_0000),
            lambda db: db.get(0xDEAD_0000),
            lambda db: db.get(obj_hids[2]),
            lambda db: db.register(
                HostRecord(hid=obj_hids[0], keys=_keys(1))
            ),
            lambda db: db.register(HostRecord(hid=3, keys=_keys(1))),
            lambda db: db.register(
                HostRecord(
                    hid=db.allocate_hid(), keys=_keys(2), subscriber_id=701
                )
            ),
        ):
            assert _outcome(lambda: op(obj)) == _outcome(lambda: op(col))
        # The failed subscriber registration burned one HID on each side;
        # the allocators must stay aligned.
        assert obj.allocate_hid() == col.allocate_hid()

    def test_pre_revoked_registration_parity(self):
        obj = make_host_database("object")
        col = make_host_database("columnar")
        for db in (obj, col):
            hid = db.allocate_hid()
            db.register(
                HostRecord(hid=hid, keys=_keys(9), subscriber_id=42, revoked=True)
            )
        assert len(obj) == len(col) == 0
        assert obj.total_registered == col.total_registered == 1
        _assert_same_db(obj, col, [FIRST_HOST_HID], [42])

    def test_direct_mutation_heals_identically(self):
        """``record.revoked = True`` bypasses ``revoke_hid``; after the
        ``find_by_subscriber`` heal both backends agree on everything."""
        obj = make_host_database("object")
        col = make_host_database("columnar")
        self._populate(obj)
        self._populate(col)
        for db in (obj, col):
            db.get(FIRST_HOST_HID + 1).revoked = True
            assert db.find_by_subscriber(701) is None  # heals the index
            assert db.find_by_subscriber(701) is None  # and stays healed
        _assert_same_db(
            obj, col, range(FIRST_HOST_HID, FIRST_HOST_HID + 8), range(700, 708)
        )
        # revoke_hid after a direct mutation must not double-count.
        for db in (obj, col):
            db.get(FIRST_HOST_HID + 3).revoked = True
            db.revoke_hid(FIRST_HOST_HID + 3)
        assert len(obj) == len(col)

    def test_counter_write_through_parity(self):
        obj = make_host_database("object")
        col = make_host_database("columnar")
        self._populate(obj, hosts=2)
        self._populate(col, hosts=2)
        for db in (obj, col):
            record = db.get(FIRST_HOST_HID)
            record.ephids_issued += 3
            record.ephids_revoked += 1
        assert _describe(obj.get(FIRST_HOST_HID)) == _describe(
            col.get(FIRST_HOST_HID)
        )

    def test_hooks_fire_identically(self):
        events = {"object": [], "columnar": []}
        for backend in ("object", "columnar"):
            db = make_host_database(backend)
            log = events[backend]
            db.on_register = lambda record, log=log: log.append(
                ("reg", record.hid)
            )
            db.on_revoke_hid = lambda hid, log=log: log.append(("rev", hid))
            self._populate(db, hosts=3)
            db.revoke_hid(FIRST_HOST_HID + 1)
        assert events["object"] == events["columnar"]

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown state backend"):
            make_host_database("bogus")
        with pytest.raises(ValueError, match="unknown state backend"):
            make_revocation_list("bogus")

    def test_columnar_rejects_short_keys(self):
        col = make_host_database("columnar")
        with pytest.raises(ValueError, match="16 bytes"):
            col.register(
                HostRecord(
                    hid=col.allocate_hid(),
                    keys=HostAsKeys(control=b"short", packet_mac=b"\x00" * 16),
                )
            )

    def test_bulk_register_validation(self):
        col = make_host_database("columnar")
        with pytest.raises(ValueError, match="count must be at least 1"):
            col.bulk_register(0, b"")
        with pytest.raises(ValueError, match="key material is"):
            col.bulk_register(2, b"\x00" * 63)

    def test_bulk_register_matches_per_record_loop(self):
        material = population_key_material(b"bulk-parity", 40)
        col = make_host_database("columnar")
        first = col.bulk_register(40, material)
        assert first == FIRST_HOST_HID
        obj = make_host_database("object")
        for i in range(40):
            base = 32 * i
            obj.register(
                HostRecord(
                    hid=obj.allocate_hid(),
                    keys=HostAsKeys(
                        control=material[base : base + 16],
                        packet_mac=material[base + 16 : base + 32],
                    ),
                )
            )
        _assert_same_db(obj, col, range(first, first + 40), [700])
        assert col.allocate_hid() == obj.allocate_hid()

    def test_bulk_register_after_explicit_rows(self):
        """The non-dense-tail path: explicit registrations past _next_hid
        force per-row writes with collision checks."""
        col = make_host_database("columnar")
        hid0 = col.allocate_hid()
        col.register(HostRecord(hid=hid0 + 2, keys=_keys(1)))  # out of order
        col.register(HostRecord(hid=hid0, keys=_keys(2)))
        first = col.bulk_register(1, population_key_material(b"gap", 1))
        assert first == hid0 + 1  # fills the hole between the explicit rows
        assert col.is_valid(hid0 + 1)
        with pytest.raises(UnknownHostError, match="already registered"):
            col.bulk_register(1, population_key_material(b"x", 1))


class TestRevocationListDifferential:
    def test_lifecycle_parity(self):
        obj = make_revocation_list("object")
        col = make_revocation_list("columnar")
        observed = {}
        for name, lst in (("object", obj), ("columnar", col)):
            calls = []
            lst.on_add = lambda e, t, calls=calls: calls.append((e, t))
            for i in range(10):
                lst.add(i.to_bytes(16, "big"), 50.0 + 10 * i)
            lst.add((3).to_bytes(16, "big"), 999.0)  # duplicate: ignored
            observed[name] = calls
        assert observed["object"] == observed["columnar"]
        assert len(observed["object"]) == 10
        for lst in (obj, col):
            assert len(lst) == 10
            assert lst.total_added == 10
            assert (4).to_bytes(16, "big") in lst
            assert (99).to_bytes(16, "big") not in lst
        assert obj.prune(95.0) == col.prune(95.0) == 5
        assert len(obj) == len(col) == 5
        assert set(obj.snapshot()) == set(col.snapshot())
        for lst in (obj, col):  # a pruned EphID can be re-revoked
            lst.add((0).to_bytes(16, "big"), 500.0)
            assert (0).to_bytes(16, "big") in lst

    def test_auto_prune_off_parity(self):
        obj = make_revocation_list("object", auto_prune=False)
        col = make_revocation_list("columnar", auto_prune=False)
        for lst in (obj, col):
            lst.add(b"\x01" * 16, 10.0)
            assert lst.maybe_prune(100.0) == 0
            assert len(lst) == 1
            assert lst.prune(100.0) == 1

    def test_columnar_compaction_keeps_membership(self):
        col = ColumnarRevocationList()
        for i in range(200):
            col.add(i.to_bytes(16, "big"), float(i) + 1.0)
        assert col.prune(181.0) == 180  # compacts: live*2 < rows
        assert len(col) == 20
        assert not col.contains((5).to_bytes(16, "big"))
        for i in range(180, 200):
            assert col.contains(i.to_bytes(16, "big"))
        # Post-compaction state still snapshots and prunes correctly.
        exp_blob, ephid_blob = col.packed_snapshot()
        fresh = ColumnarRevocationList()
        assert fresh.load_packed(exp_blob, ephid_blob) == 20
        assert set(fresh.snapshot()) == set(col.snapshot())
        assert fresh.prune(1e9) == 20
        assert len(fresh) == 0

    def test_packed_snapshot_with_holes(self):
        """packed_snapshot must skip pruned holes before compaction kicks
        in (fewer than _COMPACT_MIN_ROWS rows)."""
        col = ColumnarRevocationList()
        for i in range(10):
            col.add(i.to_bytes(16, "big"), float(i) + 1.0)
        col.prune(6.0)  # 5 holes, no compaction at this size
        exp_blob, ephid_blob = col.packed_snapshot()
        fresh = ColumnarRevocationList()
        assert fresh.load_packed(exp_blob, ephid_blob) == 5
        assert set(fresh.snapshot()) == set(col.snapshot())

    def test_load_packed_validation(self):
        with pytest.raises(ValueError, match="disagree"):
            ColumnarRevocationList().load_packed(pack_f64s([1.0]), b"")
        with pytest.raises(ValueError, match="duplicate"):
            ColumnarRevocationList().load_packed(
                pack_f64s([1.0, 2.0]), b"\x01" * 16 + b"\x01" * 16
            )


class TestShardSnapshotCodec:
    def test_empty_roundtrip(self):
        snap = ShardSnapshot.empty()
        assert ShardSnapshot.decode(snap.encode()) == snap
        assert (snap.owned_count, snap.live_count, snap.revoked_count) == (0, 0, 0)

    def test_from_rows_roundtrip(self):
        rows = [
            (FIRST_HOST_HID, b"\x01" * 16, b"\x02" * 16, False),
            (FIRST_HOST_HID + 1, b"\x03" * 16, b"\x04" * 16, True),
        ]
        live = [3, FIRST_HOST_HID]
        revoked = [(b"\x05" * 16, 100.0), (b"\x06" * 16, 200.0)]
        snap = ShardSnapshot.from_rows(rows, live, revoked)
        decoded = ShardSnapshot.decode(snap.encode())
        assert list(decoded.iter_owned()) == rows
        assert list(decoded.iter_live()) == live
        assert list(decoded.iter_revoked()) == revoked

    def test_decode_rejects_trailing_bytes(self):
        blob = ShardSnapshot.empty().encode() + b"\x00"
        with pytest.raises(ValueError, match="header implies"):
            ShardSnapshot.decode(blob)

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError, match="owned columns disagree"):
            ShardSnapshot(
                owned_hids=pack_u32s([FIRST_HOST_HID]),
                owned_flags=b"",
                owned_keys=b"\x00" * 32,
                live_hids=b"",
                rev_exp=b"",
                rev_ephids=b"",
            )
        with pytest.raises(ValueError, match="revocation columns disagree"):
            ShardSnapshot(
                owned_hids=b"",
                owned_flags=b"",
                owned_keys=b"",
                live_hids=b"",
                rev_exp=pack_f64s([1.0]),
                rev_ephids=b"",
            )


def _authoritative(backend: str, hosts: int = 240):
    """An AS-state pair (hostdb, revocations) with services, a metro-style
    bulk population, some revoked HIDs and a revocation replica —
    byte-identical content whichever backend holds it."""
    db = make_host_database(backend)
    for i, hid in enumerate(SERVICE_HIDS):
        db.register(HostRecord(hid=hid, keys=_keys(100 + i)))
    material = population_key_material(b"metro-resync", hosts)
    if backend == "columnar":
        first = db.bulk_register(hosts, material)
    else:
        first = None
        for i in range(hosts):
            hid = db.allocate_hid()
            first = hid if first is None else first
            base = 32 * i
            db.register(
                HostRecord(
                    hid=hid,
                    keys=HostAsKeys(
                        control=material[base : base + 16],
                        packet_mac=material[base + 16 : base + 32],
                    ),
                )
            )
    for offset in range(0, hosts, 17):
        db.revoke_hid(first + offset)
    rev = make_revocation_list(backend)
    for i in range(12):
        # Increasing expiries keep the object store's heap in insertion
        # order, so both backends emit identical snapshot columns.
        rev.add(i.to_bytes(16, "big"), 1_000.0 + i)
    return db, rev


def _shard_spec(plan, shard, state_backend, snapshot=b""):
    return ShardSpec(
        shard=shard,
        nshards=plan.nshards,
        aid=100,
        ephid_enc_key=b"\x01" * 16,
        ephid_mac_key=b"\x02" * 16,
        crypto_backend=None,
        packet_mac_size=8,
        with_nonce=True,
        replay_window=None,
        replay_bits=0,
        shard_block=plan.block,
        routing_mode=plan.mode,
        routing_key=plan.key or b"",
        state_backend=state_backend,
        snapshot=snapshot,
    )


class TestMetroResyncRoundTrip:
    """The ISSUE's scaled-down metro resync property: a snapshot built
    from either authoritative backend, shipped as a ``MSG_RESYNC`` frame,
    rebuilds bit-identical worker state on either worker backend."""

    @pytest.mark.parametrize("plan", [ShardPlan(3), ShardPlan(2, block=4)])
    def test_snapshot_to_resync_to_worker_view(self, plan):
        obj_db, obj_rev = _authoritative("object")
        col_db, col_rev = _authoritative("columnar")
        all_hids = list(SERVICE_HIDS) + [
            record.hid for record in col_db.records() if record.hid >= FIRST_HOST_HID
        ]
        for shard in range(plan.nshards):
            snap = build_shard_snapshot(col_db, col_rev, plan, shard)
            # Bit-identity of the wire image across authoritative backends.
            assert (
                snap.encode()
                == build_shard_snapshot(obj_db, obj_rev, plan, shard).encode()
            )
            states = {}
            for state_backend in ("object", "columnar"):
                state = ShardState(_shard_spec(plan, shard, state_backend))
                assert state.hosts.owned_count == 0
                ack = state.handle_resync(wire.encode_resync(snap))
                assert wire.decode_resync_ack(ack) == (
                    snap.owned_count,
                    snap.revoked_count,
                )
                assert state.hosts.owned_count == snap.owned_count
                states[state_backend] = state
            obj_state, col_state = states["object"], states["columnar"]
            for hid, control, packet_mac, revoked in snap.iter_owned():
                for state in states.values():
                    if revoked:
                        with pytest.raises(RevokedError):
                            state.hosts.get(hid)
                    else:
                        record = state.hosts.get(hid)
                        assert record.keys.control == control
                        assert record.keys.packet_mac == packet_mac
            for hid in all_hids:
                assert obj_state.hosts.is_valid(hid) == col_state.hosts.is_valid(
                    hid
                ), hid
                if plan.owner_of(hid) != shard:
                    with pytest.raises(UnknownHostError):
                        col_state.hosts.get(hid)
                    with pytest.raises(UnknownHostError):
                        obj_state.hosts.get(hid)
            assert (
                len(obj_state.revocations)
                == len(col_state.revocations)
                == snap.revoked_count
            )
            for ephid, _exp in snap.iter_revoked():
                assert obj_state.revocations.contains(ephid)
                assert col_state.revocations.contains(ephid)

    def test_spawn_snapshot_equals_resync_snapshot(self):
        """The ShardSpec-embedded bytes and the MSG_RESYNC payload are the
        same serialisation: spawning from one equals resyncing the other."""
        plan = ShardPlan(2)
        col_db, col_rev = _authoritative("columnar", hosts=60)
        snap = build_shard_snapshot(col_db, col_rev, plan, 1)
        for state_backend in ("object", "columnar"):
            spawned = ShardState(
                _shard_spec(plan, 1, state_backend, snapshot=snap.encode())
            )
            resynced = ShardState(_shard_spec(plan, 1, state_backend))
            resynced.handle_resync(wire.encode_resync(snap))
            assert spawned.hosts.owned_count == resynced.hosts.owned_count
            for hid, _c, _m, revoked in snap.iter_owned():
                if revoked:
                    continue
                assert (
                    spawned.hosts.get(hid).keys == resynced.hosts.get(hid).keys
                )
            assert len(spawned.revocations) == len(resynced.revocations)


class TestKeyInterning:
    def test_add_owned_interns_equal_keys(self):
        view = ShardHostView()
        control, mac = b"\x07" * 16, b"\x08" * 16
        view.add_owned(FIRST_HOST_HID, control, mac)
        # Equal-valued but distinct bytes objects, as each decoded resync
        # frame produces.
        view.add_owned(
            FIRST_HOST_HID + 1, bytes(bytearray(control)), bytes(bytearray(mac))
        )
        first = view.get(FIRST_HOST_HID).keys
        second = view.get(FIRST_HOST_HID + 1).keys
        assert second.control is first.control
        assert second.packet_mac is first.packet_mac

    def test_resync_reuses_previous_incarnation_keys(self):
        """Satellite guarantee: a worker that resyncs re-interns the
        re-shipped kHA subkeys against the pool its previous view built,
        so repeated resyncs don't duplicate 32 B per host."""
        plan = ShardPlan(2)
        col_db, col_rev = _authoritative("columnar", hosts=40)
        snap = build_shard_snapshot(col_db, col_rev, plan, 1)
        state = ShardState(_shard_spec(plan, 1, "object", snapshot=snap.encode()))
        hid = next(
            hid for hid, _c, _m, revoked in snap.iter_owned() if not revoked
        )
        before = state.hosts.get(hid).keys
        state.handle_resync(wire.encode_resync(snap))
        after = state.hosts.get(hid).keys
        assert after.control is before.control
        assert after.packet_mac is before.packet_mac


class TestColumnarShardView:
    def _snapshot(self):
        plan = ShardPlan(3)
        rows = []
        live = []
        # Services (out of plan for shard 1) plus a stripe of host rows.
        rows.append((3, b"\xaa" * 16, b"\xab" * 16, False))
        live.append(3)
        for i in range(30):
            hid = FIRST_HOST_HID + i
            revoked = i % 11 == 0
            if plan.owner_of(hid) == 1:
                rows.append((hid, bytes([i]) * 16, bytes([i + 1]) * 16, revoked))
            if not revoked:
                live.append(hid)
        return plan, rows, live

    def test_load_snapshot_matches_per_record_adds(self):
        plan, rows, live = self._snapshot()
        snap = ShardSnapshot.from_rows(rows, live, [])
        loaded = ColumnarShardView(shard=1, nshards=plan.nshards, block=plan.block)
        loaded.load_snapshot(snap)
        manual = ColumnarShardView(shard=1, nshards=plan.nshards, block=plan.block)
        for hid, control, packet_mac, revoked in rows:
            manual.add_owned(hid, control, packet_mac, revoked=revoked)
        for hid in live:
            manual.set_live(hid)
        assert loaded.owned_count == manual.owned_count == len(rows)
        for hid in range(FIRST_HOST_HID - 2, FIRST_HOST_HID + 32):
            assert loaded.is_valid(hid) == manual.is_valid(hid), hid
            assert _outcome(lambda: _describe_view(loaded.get(hid))) == _outcome(
                lambda: _describe_view(manual.get(hid))
            ), hid
        assert loaded.is_valid(3) and manual.is_valid(3)

    def test_misrouted_and_revoked_errors(self):
        view = ColumnarShardView(shard=0, nshards=2)
        with pytest.raises(UnknownHostError, match="misrouted"):
            view.get(FIRST_HOST_HID)
        view.add_owned(FIRST_HOST_HID, b"\x01" * 16, b"\x02" * 16)
        view.revoke(FIRST_HOST_HID)
        assert not view.is_valid(FIRST_HOST_HID)
        with pytest.raises(RevokedError, match="is revoked"):
            view.get(FIRST_HOST_HID)

    def test_out_of_plan_entries(self):
        """Service HIDs and HIDs another shard owns still work when pushed
        via add_owned (the supervisor's broadcast registration path)."""
        view = ColumnarShardView(shard=1, nshards=2)
        view.add_owned(3, b"\x01" * 16, b"\x02" * 16)  # service
        foreign = FIRST_HOST_HID + 1  # shard 1 of 2 owns odd rows; row 1 -> shard 1
        not_mine = FIRST_HOST_HID  # row 0 -> shard 0
        view.add_owned(not_mine, b"\x03" * 16, b"\x04" * 16)
        view.add_owned(foreign, b"\x05" * 16, b"\x06" * 16)
        assert view.owned_count == 3
        assert view.get(3).keys.control == b"\x01" * 16
        assert view.get(not_mine).keys.control == b"\x03" * 16
        view.revoke(not_mine)
        with pytest.raises(RevokedError):
            view.get(not_mine)
        assert view.is_valid(foreign)
        view.revoke(3)
        assert not view.is_valid(3)


def _describe_view(record):
    return (record.hid, record.keys.control, record.keys.packet_mac)
