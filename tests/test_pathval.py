"""Tests for the Section VIII-C path-validation extensions."""

import pytest
from hypothesis import given, strategies as st

from repro.core.autonomous_system import ApnaAutonomousSystem
from repro.core.config import ApnaConfig
from repro.core.rpki import RpkiDirectory, TrustAnchor
from repro.crypto.rng import DeterministicRng
from repro.netsim import Network
from repro.pathval import (
    AsPairwiseKeys,
    ExtendedAccountabilityAgent,
    OnPathShutoffRequest,
    OptSession,
    OptValidationError,
    PASSPORT_MAC_SIZE,
    PassportHeader,
    PassportStamper,
    PassportVerifier,
    packet_digest,
    pairwise_key,
    upgrade_to_onpath,
)
from repro.pathval.opt import (
    SESSION_ID_SIZE,
    opt_secret_of,
    pack_pvf,
    parse_pvf,
    session_key,
)
from repro.wire.apna import ApnaHeader, ApnaPacket, Endpoint
from repro.wire.errors import ParseError


def build_chain(n_ases=3, *, seed=11, config=None):
    """A linear chain of ASes: AID 100 — 200 — 300 — ..."""
    rng = DeterministicRng(seed)
    network = Network()
    config = config or ApnaConfig()
    anchor = TrustAnchor(rng)
    rpki = RpkiDirectory(anchor.public_key, network.scheduler.clock())
    ases = [
        ApnaAutonomousSystem(100 * (i + 1), network, rpki, anchor, config=config, rng=rng)
        for i in range(n_ases)
    ]
    for left, right in zip(ases, ases[1:]):
        left.connect_to(right, latency=0.010)
    network.compute_routes()
    return network, rpki, ases


@pytest.fixture()
def chain():
    return build_chain()


@pytest.fixture()
def chain_env(chain):
    """Chain plus a sender on the first AS, a receiver on the last."""
    network, rpki, (as_a, as_t, as_b) = chain
    alice = as_a.attach_host("alice")
    bob = as_b.attach_host("bob")
    alice.bootstrap()
    bob.bootstrap()
    network.compute_routes()
    alice_owned = alice.acquire_ephid_direct()
    bob_owned = bob.acquire_ephid_direct()
    packet = alice.stack.make_packet(
        alice_owned.ephid, Endpoint(as_b.aid, bob_owned.ephid), b"unwanted"
    )
    return {
        "rpki": rpki,
        "as_a": as_a,
        "as_t": as_t,
        "as_b": as_b,
        "alice": alice,
        "bob": bob,
        "alice_owned": alice_owned,
        "bob_owned": bob_owned,
        "packet": packet,
    }


def some_packet(payload=b"payload", src_aid=100, dst_aid=200):
    header = ApnaHeader(src_aid, bytes(16), bytes(16), dst_aid)
    return ApnaPacket(header, payload)


class TestPairwiseKeys:
    def test_symmetric_derivation(self, chain):
        _network, rpki, (as_a, as_t, _as_b) = chain
        key_at = pairwise_key(as_a.aid, as_a.keys.exchange, rpki.lookup(as_t.aid))
        key_ta = pairwise_key(as_t.aid, as_t.keys.exchange, rpki.lookup(as_a.aid))
        assert key_at == key_ta

    def test_distinct_per_pair(self, chain):
        _network, rpki, (as_a, as_t, as_b) = chain
        keys = AsPairwiseKeys(as_a.aid, as_a.keys.exchange, rpki)
        assert keys.key_for(as_t.aid) != keys.key_for(as_b.aid)

    def test_cache_and_forget(self, chain):
        _network, rpki, (as_a, as_t, _as_b) = chain
        keys = AsPairwiseKeys(as_a.aid, as_a.keys.exchange, rpki)
        first = keys.key_for(as_t.aid)
        assert len(keys) == 1
        assert keys.key_for(as_t.aid) is first  # cached object
        keys.forget(as_t.aid)
        assert len(keys) == 0
        assert keys.key_for(as_t.aid) == first  # same derivation

    def test_no_self_key(self, chain):
        _network, rpki, (as_a, *_rest) = chain
        keys = AsPairwiseKeys(as_a.aid, as_a.keys.exchange, rpki)
        with pytest.raises(ValueError):
            keys.key_for(as_a.aid)


class TestPassportHeader:
    def test_roundtrip(self):
        header = PassportHeader(((200, b"\x01" * 8), (300, b"\x02" * 8)))
        parsed = PassportHeader.parse(header.pack())
        assert parsed == header
        assert parsed.aids == (200, 300)
        assert parsed.wire_size == 1 + 2 * 12

    def test_mac_for(self):
        header = PassportHeader(((200, b"\x01" * 8),))
        assert header.mac_for(200) == b"\x01" * 8
        assert header.mac_for(999) is None

    def test_rejects_bad_mac_size(self):
        with pytest.raises(ValueError):
            PassportHeader(((200, b"short"),))

    def test_rejects_bad_aid(self):
        with pytest.raises(ValueError):
            PassportHeader(((2**32, b"\x01" * 8),))

    def test_parse_empty(self):
        with pytest.raises(ParseError):
            PassportHeader.parse(b"")

    def test_parse_truncated(self):
        header = PassportHeader(((200, b"\x01" * 8),))
        with pytest.raises(ParseError):
            PassportHeader.parse(header.pack()[:-1])

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**32 - 1),
                st.binary(min_size=8, max_size=8),
            ),
            max_size=20,
        )
    )
    def test_roundtrip_property(self, entries):
        header = PassportHeader(tuple(entries))
        assert PassportHeader.parse(header.pack()) == header


class TestPacketDigest:
    def test_binds_payload(self):
        assert packet_digest(some_packet(b"a")) != packet_digest(some_packet(b"b"))

    def test_binds_header(self):
        assert packet_digest(some_packet(dst_aid=200)) != packet_digest(
            some_packet(dst_aid=300)
        )

    def test_deterministic(self):
        assert packet_digest(some_packet()) == packet_digest(some_packet())


class TestPassportStamping:
    @pytest.fixture()
    def stamp_env(self, chain):
        _network, rpki, (as_a, as_t, as_b) = chain
        stamper = PassportStamper(
            AsPairwiseKeys(as_a.aid, as_a.keys.exchange, rpki)
        )
        verifier_t = PassportVerifier(
            AsPairwiseKeys(as_t.aid, as_t.keys.exchange, rpki)
        )
        verifier_b = PassportVerifier(
            AsPairwiseKeys(as_b.aid, as_b.keys.exchange, rpki)
        )
        return stamper, verifier_t, verifier_b, (as_a, as_t, as_b)

    def test_every_on_path_as_verifies(self, stamp_env):
        stamper, verifier_t, verifier_b, (as_a, as_t, as_b) = stamp_env
        packet = some_packet(src_aid=as_a.aid, dst_aid=as_b.aid)
        passport = stamper.stamp(packet, [as_t.aid, as_b.aid])
        assert verifier_t.verify(packet, passport)
        assert verifier_b.verify(packet, passport)
        assert verifier_t.verified == 1
        assert stamper.stamped_packets == 1

    def test_tampered_payload_fails(self, stamp_env):
        stamper, verifier_t, _verifier_b, (as_a, as_t, as_b) = stamp_env
        packet = some_packet(src_aid=as_a.aid, dst_aid=as_b.aid)
        passport = stamper.stamp(packet, [as_t.aid])
        tampered = ApnaPacket(packet.header, b"changed")
        assert not verifier_t.verify(tampered, passport)
        assert verifier_t.invalid == 1

    def test_missing_stamp_fails(self, stamp_env):
        stamper, _verifier_t, verifier_b, (as_a, as_t, as_b) = stamp_env
        packet = some_packet(src_aid=as_a.aid, dst_aid=as_b.aid)
        passport = stamper.stamp(packet, [as_t.aid])  # not stamped for B
        assert not verifier_b.verify(packet, passport)
        assert verifier_b.missing == 1

    def test_stamp_not_transplantable(self, stamp_env):
        # A stamp for AS T does not verify at AS B even if relabeled.
        stamper, _verifier_t, verifier_b, (as_a, as_t, as_b) = stamp_env
        packet = some_packet(src_aid=as_a.aid, dst_aid=as_b.aid)
        passport = stamper.stamp(packet, [as_t.aid])
        forged = PassportHeader(((as_b.aid, passport.entries[0][1]),))
        assert not verifier_b.verify(packet, forged)

    def test_stamps_differ_per_as(self, stamp_env):
        stamper, _vt, _vb, (as_a, as_t, as_b) = stamp_env
        packet = some_packet(src_aid=as_a.aid, dst_aid=as_b.aid)
        passport = stamper.stamp(packet, [as_t.aid, as_b.aid])
        assert passport.mac_for(as_t.aid) != passport.mac_for(as_b.aid)


class TestOpt:
    def test_endpoints_derive_same_keys(self, chain):
        _network, _rpki, ases = chain
        masters = [a.keys.secret.master for a in ases]
        sid = bytes(range(16))
        source_view = OptSession.for_endpoints(sid, masters)
        dest_view = OptSession.for_endpoints(sid, masters)
        packet = some_packet()
        assert source_view.traverse(packet) == dest_view.traverse(packet)

    def test_validate_accepts_honest_path(self, chain):
        _network, _rpki, ases = chain
        session = OptSession.for_endpoints(
            bytes(16), [a.keys.secret.master for a in ases]
        )
        packet = some_packet()
        session.validate(packet, session.traverse(packet))
        assert session.validated == 1
        assert session.path_length == 3

    def test_validate_rejects_tampered_packet(self, chain):
        _network, _rpki, ases = chain
        session = OptSession.for_endpoints(
            bytes(16), [a.keys.secret.master for a in ases]
        )
        pvf = session.traverse(some_packet(b"original"))
        with pytest.raises(OptValidationError):
            session.validate(some_packet(b"tampered"), pvf)
        assert session.failed == 1

    def test_validate_rejects_skipped_hop(self, chain):
        _network, _rpki, ases = chain
        masters = [a.keys.secret.master for a in ases]
        full = OptSession.for_endpoints(bytes(16), masters)
        skipped = OptSession.for_endpoints(bytes(16), masters[:-1])
        packet = some_packet()
        with pytest.raises(OptValidationError):
            full.validate(packet, skipped.traverse(packet))

    def test_validate_rejects_reordered_path(self, chain):
        _network, _rpki, ases = chain
        masters = [a.keys.secret.master for a in ases]
        honest = OptSession.for_endpoints(bytes(16), masters)
        reordered = OptSession.for_endpoints(bytes(16), masters[::-1])
        packet = some_packet()
        with pytest.raises(OptValidationError):
            honest.validate(packet, reordered.traverse(packet))

    def test_hop_update_matches_traverse(self, chain):
        # The router-side primitive composes into exactly what the
        # endpoint recomputes.
        _network, _rpki, ases = chain
        masters = [a.keys.secret.master for a in ases]
        sid = bytes(16)
        session = OptSession.for_endpoints(sid, masters)
        packet = some_packet()
        pvf = session.initial_pvf(packet)
        for master in masters[1:]:
            key = session_key(opt_secret_of(master), sid)
            pvf = OptSession.update_pvf(key, pvf, packet)
        session.validate(packet, pvf)

    def test_session_keys_differ_per_session(self, chain):
        _network, _rpki, (as_a, *_rest) = chain
        secret = opt_secret_of(as_a.keys.secret.master)
        assert session_key(secret, bytes(16)) != session_key(secret, b"\x01" * 16)

    def test_bad_session_id_size(self):
        with pytest.raises(ValueError):
            OptSession(b"short", [b"\x00" * 16])

    def test_needs_at_least_one_as(self):
        with pytest.raises(ValueError):
            OptSession(bytes(16), [])

    def test_pvf_wire_roundtrip(self):
        sid, pvf = b"\x01" * SESSION_ID_SIZE, b"\x02" * 16
        assert parse_pvf(pack_pvf(sid, pvf)) == (sid, pvf)

    def test_pvf_wire_truncated(self):
        with pytest.raises(ValueError):
            parse_pvf(b"short")


class TestOnPathShutoffRequest:
    def test_pack_parse_roundtrip(self, chain_env):
        as_t, packet = chain_env["as_t"], chain_env["packet"]
        request = OnPathShutoffRequest.build(
            packet.to_wire(), as_t.aid, b"\x05" * 8, as_t.keys.signing
        )
        parsed = OnPathShutoffRequest.parse(request.pack())
        assert parsed.requester_aid == request.requester_aid
        assert parsed.stamp == request.stamp
        assert parsed.signature == request.signature
        assert parsed.packet == request.packet

    def test_rejects_bad_stamp_size(self):
        with pytest.raises(ValueError):
            OnPathShutoffRequest(b"", 200, b"short")

    def test_parse_truncated(self):
        with pytest.raises(ValueError):
            OnPathShutoffRequest.parse(b"tiny")


class TestExtendedShutoff:
    @pytest.fixture()
    def onpath_env(self, chain_env):
        as_a = chain_env["as_a"]
        as_t = chain_env["as_t"]
        agent = upgrade_to_onpath(as_a)
        # AS A's border router stamps the packet toward its path.
        stamper = PassportStamper(
            AsPairwiseKeys(as_a.aid, as_a.keys.exchange, chain_env["rpki"])
        )
        packet = chain_env["packet"]
        passport = stamper.stamp(packet, [as_t.aid, chain_env["as_b"].aid])
        chain_env.update(agent=agent, passport=passport)
        return chain_env

    def _request_from_transit(self, env, *, stamp=None, signer=None, aid=None):
        as_t = env["as_t"]
        return OnPathShutoffRequest.build(
            env["packet"].to_wire(),
            aid if aid is not None else as_t.aid,
            stamp if stamp is not None else env["passport"].mac_for(as_t.aid),
            signer if signer is not None else as_t.keys.signing,
        )

    def test_on_path_as_can_shutoff(self, onpath_env):
        response = onpath_env["agent"].handle_onpath_shutoff(
            self._request_from_transit(onpath_env)
        )
        assert response.accepted
        assert onpath_env["agent"].onpath_accepted == 1
        assert onpath_env["as_a"].revocations.contains(
            onpath_env["alice_owned"].ephid
        )

    def test_recipient_path_still_works(self, onpath_env):
        # The extended agent inherits the base Fig. 5 behaviour.
        bob = onpath_env["bob"]
        request = bob.stack.build_shutoff_request(
            onpath_env["packet"].to_wire(), onpath_env["bob_owned"]
        )
        assert onpath_env["agent"].handle_shutoff(request).accepted

    def test_wrong_stamp_rejected(self, onpath_env):
        response = onpath_env["agent"].handle_onpath_shutoff(
            self._request_from_transit(onpath_env, stamp=b"\x00" * 8)
        )
        assert not response.accepted
        assert response.reason == "stamp-invalid"

    def test_bad_signature_rejected(self, onpath_env):
        request = self._request_from_transit(onpath_env)
        request.signature = bytes(64)
        response = onpath_env["agent"].handle_onpath_shutoff(request)
        assert not response.accepted
        assert response.reason == "requester-signature-invalid"

    def test_unknown_as_rejected(self, onpath_env):
        response = onpath_env["agent"].handle_onpath_shutoff(
            self._request_from_transit(onpath_env, aid=424242)
        )
        assert not response.accepted
        assert response.reason == "requester-unknown-as"

    def test_self_request_rejected(self, onpath_env):
        as_a = onpath_env["as_a"]
        response = onpath_env["agent"].handle_onpath_shutoff(
            self._request_from_transit(
                onpath_env, aid=as_a.aid, signer=as_a.keys.signing
            )
        )
        assert not response.accepted
        assert response.reason == "requester-is-self"

    def test_foreign_packet_rejected(self, onpath_env):
        as_t, as_b = onpath_env["as_t"], onpath_env["as_b"]
        foreign = some_packet(src_aid=as_b.aid, dst_aid=as_t.aid)
        request = OnPathShutoffRequest.build(
            foreign.to_wire(), as_t.aid, b"\x00" * 8, as_t.keys.signing
        )
        response = onpath_env["agent"].handle_onpath_shutoff(request)
        assert not response.accepted
        assert response.reason == "not-our-source"

    def test_rogue_packet_rejected(self, onpath_env):
        # A transit AS cannot fabricate customer traffic: the kHA MAC
        # check runs before the stamp check.
        env = onpath_env
        rogue = some_packet(src_aid=env["as_a"].aid, dst_aid=env["as_b"].aid)
        stamper = PassportStamper(
            AsPairwiseKeys(env["as_a"].aid, env["as_a"].keys.exchange, env["rpki"])
        )
        stamp = stamper.restamp_mac(rogue, env["as_t"].aid)
        request = OnPathShutoffRequest.build(
            rogue.to_wire(), env["as_t"].aid, stamp, env["as_t"].keys.signing
        )
        response = env["agent"].handle_onpath_shutoff(request)
        assert not response.accepted
        assert response.reason == "src-ephid-forged"

    def test_short_packet_rejected(self, onpath_env):
        as_t = onpath_env["as_t"]
        request = OnPathShutoffRequest.build(
            b"tiny", as_t.aid, b"\x00" * 8, as_t.keys.signing
        )
        response = onpath_env["agent"].handle_onpath_shutoff(request)
        assert not response.accepted
        assert response.reason == "packet-too-short"

    def test_upgrade_swaps_in_place(self, chain_env):
        as_a = chain_env["as_a"]
        agent = upgrade_to_onpath(as_a)
        assert as_a.aa is agent
        assert isinstance(as_a.aa, ExtendedAccountabilityAgent)
