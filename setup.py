"""Legacy setuptools shim.

The execution environment is offline and lacks the ``wheel`` package, so
PEP 660 editable wheels cannot be built; this shim lets
``pip install -e .`` fall back to ``setup.py develop``.
"""

from setuptools import setup

setup()
