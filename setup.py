"""Legacy setuptools shim.

The execution environment is offline and lacks the ``wheel`` package, so
PEP 660 editable wheels cannot be built; this shim lets
``pip install -e .`` fall back to ``setup.py develop``.
"""

from pathlib import Path

from setuptools import find_packages, setup

_version = {}
exec((Path(__file__).parent / "src" / "repro" / "version.py").read_text(), _version)

setup(
    name="repro",
    version=_version["__version__"],
    description=(
        "Source Accountability with Domain-brokered Privacy — reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro.analysis": ["baseline.txt"]},
    entry_points={
        "console_scripts": [
            "repro-analyze=repro.analysis.cli:main",
        ]
    },
    python_requires=">=3.9",
)
