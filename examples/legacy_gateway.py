#!/usr/bin/env python3
"""Incremental deployment (paper Section VII-D): unmodified IPv4 hosts
ride APNA through gateways, with DNS-learned mappings on the client side
and virtual endpoints on the server side.

Run:  python examples/legacy_gateway.py
"""

from repro.core.autonomous_system import ApnaAutonomousSystem
from repro.core.rpki import RpkiDirectory, TrustAnchor
from repro.crypto.rng import DeterministicRng
from repro.dns import DnsZone, publish_service
from repro.gateway import ApnaGateway
from repro.netsim import Network
from repro.wire.ipv4 import int_to_ip, ip_to_int


def main() -> None:
    rng = DeterministicRng("gateway")
    network = Network()
    anchor = TrustAnchor(rng)
    rpki = RpkiDirectory(anchor.public_key, network.scheduler.clock())
    office = ApnaAutonomousSystem(100, network, rpki, anchor, rng=rng)
    hosting = ApnaAutonomousSystem(200, network, rpki, anchor, rng=rng)
    office.connect_to(hosting, latency=0.018)

    # --- Client side: an old PC behind the office gateway.
    client_gw = office.attach_host("office-gw", node_cls=ApnaGateway)
    client_gw.bootstrap()
    old_pc = client_gw.add_legacy_host("win98-pc", ip_to_int("192.168.1.10"))

    # --- Server side: a legacy IPv4 server exposed through its gateway.
    server_gw = hosting.attach_host("dc-gw", node_cls=ApnaGateway)
    server_gw.bootstrap()
    legacy_srv = server_gw.add_legacy_host("legacy-server", ip_to_int("172.16.0.5"))
    legacy_srv.serve(80, lambda data: b"[legacy app] echo: " + data)
    network.compute_routes()

    zone = DnsZone(rng)
    record = publish_service(
        server_gw, zone, "oldapp.example", ipv4_hint=ip_to_int("203.0.113.80")
    )
    server_gw.expose_service(80, legacy_srv.ip)
    print(
        f"DNS: oldapp.example -> receive-only EphID + A-hint "
        f"{int_to_ip(record.ipv4_hint)}"
    )

    # The client gateway inspects the DNS reply (Section VII-D) and learns
    # the IPv4 -> AID:EphID mapping.
    client_gw.learn_from_dns_record(record)

    # --- The old PC just sends IPv4, none the wiser.
    old_pc.send_ipv4(
        ip_to_int("203.0.113.80"), b"hello from 1998", src_port=1044, dst_port=80
    )
    network.run()
    header, transport, data = old_pc.inbox[-1]
    print(f"old PC sent plain IPv4 to {int_to_ip(ip_to_int('203.0.113.80'))}:80")
    print(f"old PC received: {data!r} (from {int_to_ip(header.src)}:{transport.src_port})")

    # --- What actually happened in the middle.
    print("\nclient gateway flow table:")
    for line in client_gw.describe_flows():
        print(f"  {line}")
    srv_header, _, srv_data = legacy_srv.inbox[-1]
    print(
        f"server saw the request from virtual endpoint {int_to_ip(srv_header.src)} "
        "(a fresh private address per APNA flow)"
    )
    print(
        f"between the gateways: {office.br.forwarded_inter} APNA packet(s), "
        "encrypted, EphID-addressed, MAC-verified"
    )


if __name__ == "__main__":
    main()
