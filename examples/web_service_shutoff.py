#!/usr/bin/env python3
"""A public web service on APNA: DNS with receive-only EphIDs, the
Section VII-A client-server establishment, and the Fig. 5 shutoff
protocol used against an abusive client — while the *service* stays
immune to hostile shutoffs.

Run:  python examples/web_service_shutoff.py
"""

from repro import WorldBuilder
from repro.dns import DnsClient, DnsServer, DnsZone, publish_service
from repro.wire.apna import ApnaPacket, Endpoint


def main() -> None:
    world = (
        WorldBuilder(seed="web-service")
        .asys("isp", aid=100)  # clients
        .asys("dc", aid=200)  # datacenter
        .link("isp", "dc", latency=0.015, bandwidth=1e9)
        .build()
    )
    network = world.network
    isp, dc = world.asys("isp"), world.asys("dc")

    zone = DnsZone(world.rng)
    DnsServer(isp, zone)
    DnsServer(dc, zone)

    # --- The server publishes shop.example under a RECEIVE-ONLY EphID.
    server = world.attach_host("webserver", at="dc")
    record = publish_service(server, zone, "shop.example")
    print(f"DNS: shop.example -> receive-only EphID {record.cert.ephid.hex()[:16]}…")

    requests_log = []

    def serve(session, transport, data):
        requests_log.append((session, data))
        server.send_data(session, b"200 OK: " + data, dst_port=transport.src_port)

    server.listen(80, serve)

    # --- A legitimate client resolves and fetches (encrypted DNS, 0-RTT data).
    client = world.attach_host("customer", at="isp")
    resolver = DnsClient(client, zone.public_key)

    def on_resolved(rec):
        print(f"customer resolved shop.example, connecting with 0-RTT data")
        client.connect(rec.cert, early_data=b"GET /catalogue", dst_port=80, src_port=7001)

    resolver.resolve("shop.example", on_resolved)
    network.run()
    print(f"customer got: {client.inbox[-1][2]!r}\n")

    # --- An abuser hammers the service; the server shuts its EphID off.
    abuser = world.attach_host("abuser", at="isp")
    abuser_ephid = abuser.acquire_ephid_direct()

    # Capture the serving session the abuser's traffic arrives on.
    server.connect  # (the abuser connects like anyone else)
    abuser_session = abuser.connect(
        record.cert, early_data=b"POST /spam", dst_port=80, src_owned=abuser_ephid
    )
    network.run()
    serving_session, spam = requests_log[-1]
    print(f"webserver received abuse: {spam!r}")

    # Rebuild the offending packet bytes the server would present: here we
    # simply capture the next abusive packet at the server's access link.
    captured = []
    original_handle = server.handle_frame

    def capture(frame, *, from_node):
        captured.append(frame)
        original_handle(frame, from_node=from_node)

    server.handle_frame = capture
    abuser.send_data(abuser_session, b"MORE SPAM", dst_port=80)
    network.run()
    offending = ApnaPacket.from_wire(captured[-1])

    # The serving EphID that received the packet signs the shutoff request.
    signer = server.owned[offending.header.dst_ephid]
    responses = []
    server.send_shutoff(
        offending,
        signer=signer,
        aa_endpoint=Endpoint(abuser_ephid.cert.aid, abuser_ephid.cert.aa_ephid),
        callback=responses.append,
    )
    network.run()
    print(f"shutoff request -> AS100 accountability agent: {responses[0].reason}")

    # The abuser's EphID is now dead at ITS OWN AS's border.
    abuser.send_data(abuser_session, b"ARE YOU STILL THERE", dst_port=80)
    network.run()
    from repro.core.border_router import DropReason

    drops = isp.br.drops[DropReason.SRC_REVOKED]
    print(f"abuser's packets now dropped at AS100 egress: {drops} so far")

    # Meanwhile the published service EphID cannot be shut off (it never
    # sources packets), so shop.example keeps serving everyone else.
    client.send_data(
        client.sessions[max(client.sessions)], b"GET /checkout", dst_port=80
    )
    network.run()
    print(f"customer still served: {client.inbox[-1][2]!r}")


if __name__ == "__main__":
    main()
