#!/usr/bin/env python3
"""Quickstart: the Fig. 1 end-to-end workflow in ~60 lines of API use.

Two ASes deploy APNA; Alice (AS 100) talks to Bob (AS 200) with source
accountability, host privacy and natively encrypted traffic.

Run:  python examples/quickstart.py
"""

from repro.core.autonomous_system import ApnaAutonomousSystem
from repro.core.rpki import RpkiDirectory, TrustAnchor
from repro.crypto.rng import DeterministicRng
from repro.netsim import Network


def main() -> None:
    # --- The world: a trust anchor (RPKI), two ASes, one inter-AS link.
    rng = DeterministicRng("quickstart")
    network = Network()
    anchor = TrustAnchor(rng)
    rpki = RpkiDirectory(anchor.public_key, network.scheduler.clock())
    as_a = ApnaAutonomousSystem(100, network, rpki, anchor, rng=rng)
    as_b = ApnaAutonomousSystem(200, network, rpki, anchor, rng=rng)
    as_a.connect_to(as_b, latency=0.020)  # 20 ms one way

    # --- Step 1 (Fig. 2): hosts bootstrap into their ASes.
    alice = as_a.attach_host("alice")
    bob = as_b.attach_host("bob")
    alice.bootstrap()
    bob.bootstrap()
    network.compute_routes()
    print("bootstrapped: alice into AS100, bob into AS200")

    # --- Step 2 (Fig. 3): EphID issuance.
    bob_ephid = bob.acquire_ephid_direct()
    print(f"bob's EphID:  {bob_ephid.ephid.hex()}  (opaque outside AS200)")
    print(f"bob's cert:   signed by AS200, expires t={bob_ephid.exp_time}s")

    # --- Steps 3+4 (IV-D): connection establishment + encrypted data.
    # 0-RTT: the request rides on the very first packet.
    bob.listen(80, lambda session, transport, data: (
        print(f"bob received: {data!r} (encrypted end-to-end)"),
        bob.send_data(session, b"HTTP/1.1 200 OK"),
    ))
    session = alice.connect(bob_ephid.cert, early_data=b"GET / HTTP/1.1", dst_port=80)
    network.run()
    print(f"alice received: {alice.inbox[-1][2]!r}")
    print(f"session key (PFS, known only to alice+bob): {session.key.hex()[:16]}…")

    # --- What the network saw.
    print(
        f"\naccountability: AS100's border router verified "
        f"{as_a.br.forwarded_inter} outgoing packets (MAC + EphID checks)"
    )
    print(
        "privacy: the only identity on the wire was 'some host of AS100' — "
        f"an anonymity set of {len(as_a.hostdb)} registered hosts"
    )


if __name__ == "__main__":
    main()
