#!/usr/bin/env python3
"""Quickstart: the Fig. 1 end-to-end workflow through the scenario API.

Two ASes deploy APNA; Alice (AS 100) talks to Bob (AS 200) with source
accountability, host privacy and natively encrypted traffic.  The world
comes from a named preset — the same shape is equally one builder chain:

    WorldBuilder(seed="quickstart").asys("a", aid=100).asys("b", aid=200)
        .link("a", "b", latency=0.020).build()

Run:  python examples/quickstart.py
"""

from repro import scenarios


def main() -> None:
    # --- The world: the paper's Fig. 1 — a trust anchor (RPKI), two ASes
    #     ("a" = AID 100, "b" = AID 200), one 20 ms inter-AS link.
    world = scenarios.build("fig1", seed="quickstart")
    as_a = world.asys("a")

    # --- Step 1 (Fig. 2): hosts bootstrap into their ASes.  attach_host
    #     addresses the AS by name and bootstraps the host in one call.
    alice = world.attach_host("alice", at="a")
    bob = world.attach_host("bob", at="b")
    print("bootstrapped: alice into AS100, bob into AS200")

    # --- Step 2 (Fig. 3): EphID issuance.
    bob_ephid = bob.acquire_ephid_direct()
    print(f"bob's EphID:  {bob_ephid.ephid.hex()}  (opaque outside AS200)")
    print(f"bob's cert:   signed by AS200, expires t={bob_ephid.exp_time}s")

    # --- Steps 3+4 (IV-D): connection establishment + encrypted data.
    # 0-RTT: the request rides on the very first packet.
    bob.listen(80, lambda session, transport, data: (
        print(f"bob received: {data!r} (encrypted end-to-end)"),
        bob.send_data(session, b"HTTP/1.1 200 OK"),
    ))
    session = alice.connect(bob_ephid.cert, early_data=b"GET / HTTP/1.1", dst_port=80)
    world.run()
    print(f"alice received: {alice.inbox[-1][2]!r}")
    print(f"session key (PFS, known only to alice+bob): {session.key.hex()[:16]}…")

    # --- What the network saw.
    print(
        f"\naccountability: AS100's border router verified "
        f"{as_a.br.forwarded_inter} outgoing packets (MAC + EphID checks)"
    )
    print(
        "privacy: the only identity on the wire was 'some host of AS100' — "
        f"an anonymity set of {len(as_a.hostdb)} registered hosts"
    )


if __name__ == "__main__":
    main()
