#!/usr/bin/env python3
"""Strengthened shutoff via path validation (paper Section VIII-C).

The base shutoff protocol (Fig. 5) only lets the packet's *recipient*
demand a shutoff.  The paper suggests combining APNA with path-validation
proposals (Packet Passport, ICING, OPT) so that on-path ASes — the ones
actually carrying a DDoS flood — can act too.  This example runs that
combination end to end:

1. An attacker in AS 100 floods a victim four ASes away.
2. AS 100's border stamps each packet with Passport MACs for every
   downstream AS (one CMAC per AS, keyed pairwise via RPKI).
3. Transit AS 200, drowning in flood traffic, verifies its stamp and
   issues an on-path shutoff to AS 100's accountability agent.
4. The agent validates the request (real AS? genuine customer packet?
   provably stamped toward that AS?) and revokes the attacker's EphID.
5. An off-path AS tries the same and is rejected.

Run:  python examples/path_validation_shutoff.py
"""

from repro.core.border_router import DropReason
from repro.pathval import (
    AsPairwiseKeys,
    OnPathShutoffRequest,
    PassportStamper,
    PassportVerifier,
    upgrade_to_onpath,
)
from repro import scenarios
from repro.wire.apna import Endpoint


def main() -> None:
    # --- A four-AS chain: attacker -> transit -> transit -> victim.
    world = scenarios.build("chain:4", seed="pathval-demo")
    source, transit, _transit2, destination = world.ases
    attacker = world.attach_host("attacker", at=source.aid)
    victim = world.attach_host("victim", at=destination.aid)
    print(f"chain: {' -> '.join(f'AS{a.aid}' for a in world.ases)}")

    # AS 100 deploys the extension: its agent now accepts on-path requests.
    agent = upgrade_to_onpath(source)

    # --- The flood. The source AS stamps every packet for the path.
    attacker_ephid = attacker.acquire_ephid_direct()
    victim_ephid = victim.acquire_ephid_direct()
    downstream = world.as_path(source.aid, destination.aid)[1:]
    stamper = PassportStamper(
        AsPairwiseKeys(source.aid, source.keys.exchange, world.rpki)
    )
    flood = [
        attacker.stack.make_packet(
            attacker_ephid.ephid,
            Endpoint(destination.aid, victim_ephid.ephid),
            f"flood packet {i}".encode(),
        )
        for i in range(50)
    ]
    passports = [stamper.stamp(packet, downstream) for packet in flood]
    print(
        f"stamped {len(flood)} flood packets for downstream ASes {downstream} "
        f"({passports[0].wire_size} B of stamps per packet)"
    )

    # --- Transit AS 200 verifies its stamps and decides it has had enough.
    verifier = PassportVerifier(
        AsPairwiseKeys(transit.aid, transit.keys.exchange, world.rpki)
    )
    verified = sum(
        verifier.verify(packet, passport)
        for packet, passport in zip(flood, passports)
    )
    print(f"AS{transit.aid} verified {verified}/{len(flood)} passport stamps")

    evidence, evidence_passport = flood[0], passports[0]
    request = OnPathShutoffRequest.build(
        evidence.to_wire(),
        transit.aid,
        evidence_passport.mac_for(transit.aid),
        transit.keys.signing,
    )
    response = agent.handle_onpath_shutoff(request)
    print(f"on-path shutoff from AS{transit.aid}: {response.reason}")

    # --- The flood dies at its own AS's border router.
    verdicts = [source.br.process_outgoing(packet) for packet in flood]
    dropped = sum(v.reason is DropReason.SRC_REVOKED for v in verdicts)
    print(f"source border router now drops {dropped}/{len(flood)} flood packets")

    # --- An off-path AS gets nowhere: it holds no stamp for these packets.
    bystander_world = scenarios.build("star:1", seed="bystander")
    bystander = bystander_world.ases[0]
    world.rpki.publish(world.anchor.certify(999, bystander.keys))
    rogue = OnPathShutoffRequest.build(
        flood[1].to_wire(), 999, b"\x00" * 8, bystander.keys.signing
    )
    response = agent.handle_onpath_shutoff(rogue)
    print(f"off-path AS999 shutoff attempt: rejected ({response.reason})")

    print(
        f"\nagent totals: {agent.accepted} accepted "
        f"({agent.onpath_accepted} on-path), rejections: {agent.rejected}"
    )


if __name__ == "__main__":
    main()
