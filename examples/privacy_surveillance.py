#!/usr/bin/env python3
"""What a mass-surveillance adversary sees on an APNA network — and what
a lawful, targeted request can still recover with AS cooperation
(paper Sections VI-B and VIII-H).

A passive global observer taps every inter-AS link, then:
  1. tries to identify who is talking (host privacy),
  2. tries to link flows to a common sender (sender-flow unlinkability),
  3. records everything and later 'seizes' all long-term keys (PFS).
Finally, the targeted path: the source AS deanonymizes one EphID.

Run:  python examples/privacy_surveillance.py
"""

from collections import Counter

from repro import WorldBuilder
from repro.wire import gre
from repro.wire.apna import ApnaPacket


def main() -> None:
    senders = ("whistleblower", "journalist-src", "regular-joe")
    builder = (
        WorldBuilder(seed="surveillance")
        .asys("a", aid=100)
        .asys("b", aid=200)
        .link("a", "b", latency=0.010, bandwidth=1e9)
    )
    for name in senders:
        builder.host(name, at="a")
    builder.host("news-site", at="b")
    world = builder.build()

    network = world.network
    as_a = world.asys("a")
    hosts = [world.host(name) for name in senders]
    sink = world.host("news-site")

    # --- The tap: every frame on the inter-AS link is recorded.
    tapped: list[bytes] = []
    link = as_a.node._links["AS200"]
    original = link.send_from

    def tap(sender, frame):
        tapped.append(frame)
        return original(sender, frame)

    link.send_from = tap

    # --- Traffic: each host opens several flows to the news site.
    sink_ephid = sink.acquire_ephid_direct()
    sessions = []
    for host in hosts:
        for flow in range(3):
            sessions.append(
                (host, host.connect(
                    sink_ephid.cert,
                    early_data=f"document-{flow} from {host.name}".encode(),
                    src_port=4000 + flow,
                ))
            )
    network.run()

    # --- 1) Host identification.
    print(f"observer captured {len(tapped)} inter-AS frames")
    src_ephids = Counter()
    plaintext_hits = 0
    for frame in tapped:
        _, apna_bytes = gre.decapsulate(frame)
        packet = ApnaPacket.from_wire(apna_bytes)
        src_ephids[packet.header.src_ephid] += 1
        if b"whistleblower" in frame or b"document" in frame:
            plaintext_hits += 1
    print(f"plaintext leaks in captured traffic: {plaintext_hits}")
    print(
        f"visible source identities: 'AS100' x{len(tapped)} — an anonymity set "
        f"of {len(as_a.hostdb)} hosts; EphIDs are opaque tokens"
    )

    # --- 2) Flow linkage.
    print(
        f"distinct source EphIDs observed: {len(src_ephids)} "
        f"(9 flows from 3 hosts; per-flow EphIDs -> no two flows linkable)"
    )

    # --- 3) Retrospective decryption with seized long-term keys.
    from repro.crypto.kdf import hkdf

    seized = [
        as_a.keys.secret.master,
        as_a.keys.signing.secret,
        as_a.keys.exchange.secret,
    ] + [host.stack.keys.secret for host in hosts]
    host0, session0 = sessions[0]
    cracked = any(
        hkdf(secret, info=b"apna-session-v1:", length=32) == session0.key
        for secret in seized
    )
    print(f"decryption with ALL seized long-term keys: {'BROKEN' if cracked else 'defeated (PFS)'}")

    # --- The lawful, targeted path (Section VIII-H).
    target_ephid = next(iter(src_ephids))
    info = as_a.codec.open(target_ephid)  # only AS100 can do this
    record = next(
        (h for h in hosts if as_a.hostdb.find_by_subscriber(h.subscriber_id).hid == info.hid),
        None,
    )
    print(
        f"\ntargeted request with AS100's cooperation: EphID "
        f"{target_ephid.hex()[:16]}… -> HID {info.hid} -> subscriber "
        f"{record.name if record else '?'}"
    )
    print("mass surveillance: frustrated.  targeted accountability: intact.")


if __name__ == "__main__":
    main()
