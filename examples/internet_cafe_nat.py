#!/usr/bin/env python3
"""An internet cafe behind a NAT-mode access point (paper Section VII-B).

The AP is one subscriber of the AS, yet every laptop behind it gets its
own EphIDs (with keys the AP never learns), full encrypted connectivity,
and — when one client misbehaves — the AP plays accountability agent and
pinpoints exactly which chair the abuse came from.

Run:  python examples/internet_cafe_nat.py
"""

from repro.core.autonomous_system import ApnaAutonomousSystem
from repro.core.rpki import RpkiDirectory, TrustAnchor
from repro.crypto.rng import DeterministicRng
from repro.gateway import NatAccessPoint
from repro.netsim import Network


def main() -> None:
    rng = DeterministicRng("cafe")
    network = Network()
    anchor = TrustAnchor(rng)
    rpki = RpkiDirectory(anchor.public_key, network.scheduler.clock())
    isp = ApnaAutonomousSystem(100, network, rpki, anchor, rng=rng)
    remote = ApnaAutonomousSystem(200, network, rpki, anchor, rng=rng)
    isp.connect_to(remote, latency=0.012)

    # --- The cafe: one AP subscription, many customers.
    ap = isp.attach_host("cafe-ap", node_cls=NatAccessPoint)
    ap.bootstrap()
    laptop = ap.register_client("window-seat-laptop")
    phone = ap.register_client("corner-phone")
    network.compute_routes()
    print("cafe open: AP bootstrapped as one AS100 subscriber, 2 customers inside")

    # --- A server out on the net.
    server = remote.attach_host("news-site")
    server.bootstrap()
    server_ephid = server.acquire_ephid_direct()
    server.listen(80, lambda s, t, d: server.send_data(s, b"today's news", dst_port=t.src_port))

    # --- Customers get EphIDs *through* the AP (proxied Fig. 3).
    issued = {}
    laptop.acquire_ephid(callback=lambda owned: issued.setdefault("laptop", owned))
    phone.acquire_ephid(callback=lambda owned: issued.setdefault("phone", owned))
    network.run()
    print(f"laptop EphID: {issued['laptop'].ephid.hex()[:16]}…  (decodes to the AP's HID)")
    print(f"phone  EphID: {issued['phone'].ephid.hex()[:16]}…")
    print(f"AP's EphID_info list tracks {len(ap.ephid_info)} client bindings")

    # --- Normal browsing: encrypted end-to-end; the AP relays ciphertext.
    session = laptop.connect(
        server_ephid.cert, issued["laptop"], early_data=b"GET /front-page", src_port=5000, dst_port=80
    )
    network.run()
    print(f"laptop read: {laptop.inbox[-1][2]!r}")
    print(f"AP relayed {ap.relayed_out} frames out, {ap.relayed_in} in — all opaque to it")

    # --- One customer misbehaves; the AS blames the AP; the AP identifies.
    spam_session = phone.connect(
        server_ephid.cert, issued["phone"], early_data=b"SPAM SPAM SPAM", src_port=6000, dst_port=80
    )
    network.run()
    culprit = ap.identify(issued["phone"].ephid)
    print(f"\nabuse report for EphID {issued['phone'].ephid.hex()[:16]}…")
    print(f"AP identifies the culprit: {culprit}")
    ap.block_client(culprit)
    phone.send_data(spam_session, b"more spam?", src_port=6000, dst_port=80)
    network.run()
    print(f"blocked: AP rejected {ap.rejected_frames} frame(s) from {culprit}")

    # The laptop is unaffected.
    laptop.send_data(session, b"GET /sports", src_port=5000, dst_port=80)
    network.run()
    print(f"laptop still browsing fine: {laptop.inbox[-1][2]!r}")


if __name__ == "__main__":
    main()
