#!/usr/bin/env python3
"""ICMP on APNA (paper Section VIII-B): ping with EphID sources, and the
network's error feedback when a destination EphID has gone stale.

Run:  python examples/icmp_tools.py
"""

from repro import WorldBuilder
from repro.wire.apna import Endpoint


def main() -> None:
    world = (
        WorldBuilder(seed="icmp")
        .asys("a", aid=100)
        .asys("b", aid=200)
        .link("a", "b", latency=0.025, bandwidth=1e9)
        .host("alice", at="a")
        .host("bob", at="b")
        .build()
    )
    network = world.network
    as_b = world.asys("b")
    alice, bob = world.host("alice"), world.host("bob")

    # --- ping: echo request/reply, authenticated and privacy-preserving.
    bob_ephid = bob.acquire_ephid_direct()
    print(f"PING {bob_ephid.ephid.hex()[:16]}… (AS200)")
    for i in range(3):
        alice.ping(
            Endpoint(200, bob_ephid.ephid),
            callback=lambda rtt, n=i: print(f"  seq={n} rtt={1e3 * rtt:.1f} ms"),
        )
        network.run()
    print(
        "bob saw echo-requests from 3 distinct EphIDs "
        f"({len({m.identifier for m in bob.icmp_log})} ids) — the pinger stays private"
    )

    # --- network feedback: pinging a stale (expired) EphID.
    record = as_b.hostdb.find_by_subscriber(bob.subscriber_id)
    stale = as_b.codec.seal(hid=record.hid, exp_time=1, iv=as_b.ivs.next_iv())
    network.run_until(network.now + 10.0)
    print("\nPING <stale EphID> (expired 10 s ago)")
    alice.ping(Endpoint(200, stale), callback=lambda rtt: print("  unexpected reply!"))
    network.run()
    error = alice.icmp_log[-1]
    print(f"  {error.type_name} (code {error.code}) from AS200's border router")
    print(
        "  the router answered with its own EphID — even infrastructure "
        "feedback is accountable in APNA"
    )


if __name__ == "__main__":
    main()
