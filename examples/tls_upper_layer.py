#!/usr/bin/env python3
"""TLS over APNA (paper Section VIII-F) — and the one gap it closes.

The paper: APNA already gives an encrypted end-to-end channel, so a TLS
layered on top "may omit" its key exchange and only needs to perform
authentication.  This example runs that reduced handshake — one
signature, zero extra round trips of Diffie-Hellman — and then
demonstrates why it matters: Section VI-B concedes that for two hosts in
the *same* AS, a malicious AS can fake both EphID certificates and read
everything ("the two hosts can use security protocols in higher layers").
The channel-bound attestation detects exactly that attack.

Run:  python examples/tls_upper_layer.py
"""

from repro.core.keys import SigningKeyPair
from repro.core.session import Session
from repro.tls import (
    AuthRequest,
    TlsAuthError,
    WebCa,
    attest,
    channel_binding,
    verify_attestation,
)
from repro import scenarios


def main() -> None:
    world = scenarios.build("fig1", seed="tls-demo")
    alice = world.attach_host("alice", at="a")  # the client
    shop = world.attach_host("shop", at="b")  # shop.example's server

    # --- A web PKI exists above APNA: a CA vouches for domain names.
    ca = WebCa(world.rng)
    shop_keys = SigningKeyPair.generate(world.rng)
    shop_cert = ca.issue("shop.example", shop_keys.public, exp_time=10_000)
    print(f"CA issued a domain certificate for {shop_cert.name!r}")

    # --- Honest case: one APNA session, one signature, authenticated.
    alice_ephid = alice.acquire_ephid_direct()
    shop_ephid = shop.acquire_ephid_direct()
    client_session = Session(alice_ephid, shop_ephid.cert)
    server_session = Session(shop_ephid, alice_ephid.cert)
    assert client_session.key == server_session.key  # APNA already agreed

    request = AuthRequest.create("shop.example", world.rng)
    attestation = attest(server_session, request, shop_cert, shop_keys, world.rng)
    verify_attestation(client_session, request, attestation, ca.public_key, now=0.0)
    print(
        "honest handshake: server authenticated with 1 signature, "
        "0 extra key exchanges (binding "
        f"{channel_binding(client_session).hex()[:16]}...)"
    )

    # --- The VI-B gap: alice and a server in HER OWN AS, with the AS
    #     playing man in the middle by minting EphIDs and faking certs.
    local_server = world.attach_host("local-shop", at="a")
    victim_ephid = alice.acquire_ephid_direct()
    server2_ephid = local_server.acquire_ephid_direct()
    # The AS mints its own EphIDs (it runs the MS, it can do this freely)
    # and presents fake-but-validly-signed certificates to both victims.
    mitm_e1 = alice.acquire_ephid_direct()
    mitm_e2 = alice.acquire_ephid_direct()

    victim_session = Session(victim_ephid, mitm_e1.cert)  # alice <-> "server"
    mitm_server_leg = Session(mitm_e2, server2_ephid.cert)  # AS <-> server
    server_leg = Session(server2_ephid, mitm_e2.cert)

    # Without the upper layer, the AS now reads everything. With it:
    request = AuthRequest.create("shop.example", world.rng)
    relayed = attest(server_leg, request, shop_cert, shop_keys, world.rng)
    assert channel_binding(mitm_server_leg) == channel_binding(server_leg)
    try:
        verify_attestation(victim_session, request, relayed, ca.public_key, now=0.0)
        print("MitM NOT detected — this should never print")
    except TlsAuthError as exc:
        print(f"intra-domain AS MitM detected: {exc}")

    print(
        "\nthe relayed attestation was signed over the server-leg binding; "
        "alice's leg derives a different APNA session key, so verification "
        "fails closed"
    )


if __name__ == "__main__":
    main()
