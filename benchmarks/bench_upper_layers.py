"""Benchmarks for the upper-layer extensions (Sections VIII-B and VIII-F).

* TLS over APNA: the reduced handshake is one Ed25519 signature and one
  verification — no second key exchange.  The numbers here, next to the
  X25519 cost in ``bench_crypto.py``, quantify what omitting it saves.
* Encrypted ICMP: the opportunistic seal/open path and the certificate
  cache that bounds its storage (the paper's stated overhead concern).
"""

import pytest

from repro.core import framing
from repro.core.icmp_crypto import CertificateCache, EncryptedIcmpCodec
from repro.core.keys import SigningKeyPair
from repro.core.session import ConnectionRequest, Session
from repro.crypto.rng import DeterministicRng
from repro.tls import AuthRequest, WebCa, attest, channel_binding, verify_attestation
from repro.wire.icmp import IcmpMessage, TIME_EXCEEDED


@pytest.fixture(scope="module")
def tls_setup(bench_world):
    rng = DeterministicRng("bench-tls")
    alice = bench_world.hosts_a[0]
    bob = bench_world.hosts_b[0]
    alice_owned = alice.acquire_ephid_direct()
    bob_owned = bob.acquire_ephid_direct()
    client = Session(alice_owned, bob_owned.cert)
    server = Session(bob_owned, alice_owned.cert)
    ca = WebCa(rng)
    domain_keys = SigningKeyPair.generate(rng)
    cert = ca.issue("shop.example", domain_keys.public)
    request = AuthRequest.create("shop.example", rng)
    attestation = attest(server, request, cert, domain_keys, rng)
    return {
        "rng": rng,
        "client": client,
        "server": server,
        "ca": ca,
        "cert": cert,
        "keys": domain_keys,
        "request": request,
        "attestation": attestation,
    }


def test_channel_binding(benchmark, tls_setup):
    """One HKDF export; computed once per handshake by each side."""
    benchmark(channel_binding, tls_setup["client"])


def test_tls_attest(benchmark, tls_setup):
    """Server side: binding + one Ed25519 signature."""
    setup = tls_setup
    benchmark(
        attest, setup["server"], setup["request"], setup["cert"], setup["keys"],
        setup["rng"],
    )


def test_tls_verify(benchmark, tls_setup):
    """Client side: cert verify + attestation verify (two Ed25519 ops)."""
    setup = tls_setup

    def verify():
        verify_attestation(
            setup["client"],
            setup["request"],
            setup["attestation"],
            setup["ca"].public_key,
        )

    benchmark(verify)
    benchmark.extra_info["note"] = "no key exchange: compare x25519 in bench_crypto"


@pytest.fixture(scope="module")
def icmp_setup(bench_world):
    alice = bench_world.hosts_a[0]
    bob = bench_world.hosts_b[0]
    alice_owned = alice.acquire_ephid_direct()
    bob_owned = bob.acquire_ephid_direct()
    sender = EncryptedIcmpCodec(bob_owned, rng=DeterministicRng("icmp"))
    sender.cache.insert(alice_owned.cert)
    receiver = EncryptedIcmpCodec(alice_owned)
    message = IcmpMessage(TIME_EXCEEDED, payload=b"x" * 64)
    wire = sender.seal(message, alice_owned.ephid, now=0.0)
    conn_frame = framing.frame(
        framing.PT_CONN_REQUEST, ConnectionRequest(alice_owned.cert).pack()
    )
    return {
        "sender": sender,
        "receiver": receiver,
        "message": message,
        "target": alice_owned.ephid,
        "wire": wire,
        "conn_frame": conn_frame,
    }


def test_icmp_seal_encrypted(benchmark, icmp_setup):
    """Cache hit: ECDH + AEAD per message (the opportunistic path)."""
    setup = icmp_setup
    benchmark(setup["sender"].seal, setup["message"], setup["target"], 0.0)


def test_icmp_seal_plaintext_fallback(benchmark, icmp_setup):
    """Cache miss: the paper's default plaintext ICMP."""
    setup = icmp_setup
    benchmark(setup["sender"].seal, setup["message"], bytes(16), 0.0)


def test_icmp_open_encrypted(benchmark, icmp_setup):
    setup = icmp_setup
    benchmark(setup["receiver"].open, setup["wire"])


def test_cert_cache_observe_data_frame(benchmark, icmp_setup):
    """The per-packet router cost for ordinary traffic: one byte peek."""
    cache = CertificateCache()
    data_frame = framing.frame(framing.PT_DATA, b"x" * 512)
    benchmark(cache.observe_payload, data_frame)


def test_cert_cache_observe_conn_frame(benchmark, icmp_setup):
    """Harvesting a certificate from a connection-establishment frame."""
    cache = CertificateCache(capacity=1024)
    benchmark(cache.observe_payload, icmp_setup["conn_frame"])
