"""E5 bench — EphID granularity policies (paper Section VIII-A).

Times the per-packet source-EphID decision under each policy and attaches
the E5 trade-off metrics (MS load, linkability, blast radius).
"""

import pytest

from repro.core.granularity import FlowKey, make_policy
from repro.experiments import e5_granularity

POLICIES = ("per-host", "per-application", "per-flow", "per-packet")


@pytest.mark.parametrize("policy_name", POLICIES)
def test_policy_decision_cost(benchmark, bench_world, bench_host, policy_name):
    policy = make_policy(
        policy_name,
        lambda flags, lifetime: bench_host.acquire_ephid_direct(flags, lifetime),
        bench_world.network.scheduler.clock(),
    )
    flows = [FlowKey(200, bytes([i]) * 16, 5000 + i, 443) for i in range(8)]
    state = {"i": 0}

    def decide():
        flow = flows[state["i"] % len(flows)]
        state["i"] += 1
        policy.ephid_for(flow=flow, app=f"app-{state['i'] % 3}")

    benchmark(decide)
    benchmark.extra_info["policy"] = policy_name
    benchmark.extra_info["ms_requests_for_8_flows"] = policy.requests_made


def test_granularity_tradeoff_shape(benchmark):
    """The full E5 ablation as a single benchmark (shape assertion)."""
    result = benchmark.pedantic(
        lambda: e5_granularity.run(flows=8, packets_per_flow=3, quiet=True),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["ordering_holds"] = result.ordering_holds
    for point in result.points:
        benchmark.extra_info[point.policy] = (
            f"requests={point.ms_requests} linkage={point.linkage_score:.2f} "
            f"blast={point.blast_radius_flows}"
        )
    assert result.ordering_holds
