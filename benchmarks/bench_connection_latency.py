"""E4 bench — connection-establishment latency (paper Section VII-C).

Latency here is *virtual* (simulated RTTs); the benchmark times the
simulation run while the RTT-unit results land in extra_info, checked
against the paper's 1/0 (host-host) and 1.5/0.5/0 (client-server) RTTs.
"""

from repro.experiments import e4_latency


def test_host_host_establishment(benchmark):
    def scenario():
        return e4_latency._host_host(early=False)

    ttfb = benchmark.pedantic(scenario, rounds=3, iterations=1)
    benchmark.extra_info["ttfb_rtt"] = round(ttfb, 3)
    benchmark.extra_info["paper_wait_rtt"] = 1.0
    assert abs((ttfb - 0.5) - 1.0) < 0.25


def test_host_host_zero_rtt(benchmark):
    def scenario():
        return e4_latency._host_host(early=True)

    ttfb = benchmark.pedantic(scenario, rounds=3, iterations=1)
    benchmark.extra_info["ttfb_rtt"] = round(ttfb, 3)
    benchmark.extra_info["paper_wait_rtt"] = 0.0
    assert abs(ttfb - 0.5) < 0.25


def test_client_server_full(benchmark):
    def scenario():
        return e4_latency._client_server("after-accept")

    ttfb = benchmark.pedantic(scenario, rounds=3, iterations=1)
    benchmark.extra_info["ttfb_rtt"] = round(ttfb, 3)
    benchmark.extra_info["paper_ttfb_rtt"] = 1.5
    assert abs(ttfb - 1.5) < 0.25


def test_client_server_half_rtt(benchmark):
    def scenario():
        return e4_latency._client_server("half-rtt")

    ttfb = benchmark.pedantic(scenario, rounds=3, iterations=1)
    benchmark.extra_info["ttfb_rtt"] = round(ttfb, 3)
    benchmark.extra_info["paper_wait_rtt"] = 0.5
    assert abs((ttfb - 0.5) - 0.5) < 0.25


def test_client_server_zero_rtt(benchmark):
    def scenario():
        return e4_latency._client_server("0rtt")

    ttfb = benchmark.pedantic(scenario, rounds=3, iterations=1)
    benchmark.extra_info["ttfb_rtt"] = round(ttfb, 3)
    benchmark.extra_info["paper_wait_rtt"] = 0.0
    assert abs(ttfb - 0.5) < 0.25
