"""Million-host state-store bench — the ``metro:N`` scale curves.

The paper's §V-A2 registry is dimensioned for its trace's 1,266,598
unique hosts; this bench records what the :mod:`repro.state` columnar
store pays to hold host populations of that order: build-time and
resident-set curves over a ``metro:N`` ladder (the hosts-vs-RSS
trajectory the snapshot JSON carries across PRs), columnar-vs-object
bulk-registration throughput, and the packed snapshot codec's
encode/decode rate (the bytes every worker spawn and ``MSG_RESYNC``
ships).

Smoke mode shrinks the ladder so tier-1 CI stays fast; the full ladder
tops out at the paper-scale million hosts per AS.
"""

import gc
import os
import time

from repro import scenarios
from repro.sharding.plan import ShardPlan
from repro.state import (
    ColumnarHostDatabase,
    ShardSnapshot,
    build_shard_snapshot,
    make_host_database,
    make_revocation_list,
    population_key_material,
)

_PAGE = os.sysconf("SC_PAGESIZE")


def _rss_bytes() -> "int | None":
    """Resident set size via ``/proc/self/statm`` (no psutil dependency)."""
    try:
        with open("/proc/self/statm") as fh:
            return int(fh.read().split()[1]) * _PAGE
    except (OSError, ValueError, IndexError):
        return None


def _is_smoke(request) -> bool:
    return bool(getattr(request.config.option, "benchmark_disable", False))


def test_metro_build_ladder(benchmark, request):
    """Build-time and RSS curves over a ``metro:N`` ladder.

    The paper-shape verdict: hosts-vs-RSS grows linearly in the packed
    columns (~32 B of keys + ~13 B of flags/counters per host), not in
    Python objects — the curve is what ``compare_snapshots.py`` watches
    across PRs.
    """
    ladder = [10_000, 50_000] if _is_smoke(request) else [100_000, 300_000, 1_000_000]
    curve = []
    for hosts in ladder:
        gc.collect()
        rss_before = _rss_bytes()
        t0 = time.perf_counter()
        world = scenarios.build(f"metro:{hosts}", seed=1)
        build_s = time.perf_counter() - t0
        rss_after = _rss_bytes()
        total = sum(asys.hostdb.total_registered for asys in world.ases)
        assert total >= 2 * hosts
        curve.append(
            {
                "hosts_per_as": hosts,
                "build_s": round(build_s, 4),
                "rss_before_bytes": rss_before,
                "rss_after_bytes": rss_after,
            }
        )
        del world
    gc.collect()

    top = ladder[-1]
    world = benchmark.pedantic(
        lambda: scenarios.build(f"metro:{top}", seed=1), rounds=1, iterations=1
    )
    assert len(world.asys("a").hostdb) == top + 6  # hosts + alice + 5 services
    benchmark.extra_info["ladder"] = curve
    benchmark.extra_info["state_backend"] = world.config.state_backend


def test_bulk_register_columnar_vs_object(benchmark, request):
    """Bulk registration throughput, columnar vs per-record object store."""
    count = 20_000 if _is_smoke(request) else 200_000
    material = population_key_material(b"bench-scale", count)

    def columnar():
        db = make_host_database("columnar")
        db.bulk_register(count, material)
        return db

    db = benchmark(columnar)
    assert len(db) == count

    # The object-store arm is timed inline (one pass is representative and
    # keeps the bench single-parametrization): the ratio is the verdict.
    from repro.core.hostdb import HostRecord
    from repro.core.keys import HostAsKeys

    obj = make_host_database("object")
    t0 = time.perf_counter()
    for i in range(count):
        hid = obj.allocate_hid()
        base = 32 * i
        obj.register(
            HostRecord(
                hid=hid,
                keys=HostAsKeys(
                    control=material[base : base + 16],
                    packet_mac=material[base + 16 : base + 32],
                ),
            )
        )
    object_s = time.perf_counter() - t0
    assert len(obj) == count
    benchmark.extra_info["hosts"] = count
    benchmark.extra_info["object_store_s"] = round(object_s, 4)


def test_shard_snapshot_codec(benchmark, request):
    """Encode+decode one shard's packed snapshot at population scale."""
    count = 20_000 if _is_smoke(request) else 200_000
    db = ColumnarHostDatabase()
    db.bulk_register(count, population_key_material(b"bench-snap", count))
    rev = make_revocation_list("columnar")
    for i in range(256):
        rev.add(i.to_bytes(16, "big"), 1_000.0 + i)
    plan = ShardPlan(4)
    snap = build_shard_snapshot(db, rev, plan, shard=1)

    def roundtrip():
        return ShardSnapshot.decode(snap.encode())

    decoded = benchmark(roundtrip)
    assert decoded == snap
    benchmark.extra_info["owned_hosts"] = snap.owned_count
    benchmark.extra_info["live_hosts"] = snap.live_count
    benchmark.extra_info["revoked"] = snap.revoked_count
    benchmark.extra_info["snapshot_bytes"] = len(snap.encode())
