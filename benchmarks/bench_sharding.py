"""Sharded data plane — the §V-A3 share-nothing scaling curve.

The paper's MS throughput comes from 4 coordination-free processes; PR 4
made the burst the unit of work (``process_batch``, ~3x the scalar loop
at burst 64 on openssl).  This module measures what stacking the two
buys: a :class:`~repro.sharding.ShardedDataPlane` at 1/2/4 shards
against the single-process batch and scalar loops over the same
64-packet bursts.

Reading the curve: the 1-shard arm prices the dispatcher + IPC overhead
(route, pack, one pipe round-trip per burst); each added shard should
recover worker time roughly linearly *on a multi-core host*, and because
every worker runs the batched loop, the sharded plane's throughput vs
the **scalar** single-process loop is super-linear in the shard count —
the acceptance bar recorded in ``extra_info``.  Bursts are pipelined
(several in flight) exactly as a line-rate deployment would run, so the
dispatcher packs burst k+1 while the shards crunch burst k.

On a single-core CI container the curve degenerates (everything shares
one core); ``extra_info["cpu_count"]`` says which regime a snapshot was
measured in.

PR 6 adds the robustness arms: ``test_shard_recovery_time`` prices one
full failure cycle (worker SIGKILL → drop-and-count → respawn + state
resync → first clean burst), and ``test_supervision_steady_state_overhead``
compares the bounded ``poll``-then-``recv`` reply wait the supervisor
needs against the old blocking ``recv`` on the no-failure path.

PR 8 adds ``test_dispatch_preroute_routing_mode``: the burst pre-route
(one ``owners_of_iv_bytes`` call over a 64-IV column) under the default
PRF-keyed map vs the legacy residue map — the acceptance bar is keyed
within ~10% of residue at burst 64 on openssl, which one bulk CMAC over
the whole column buys.
"""

import os

import pytest

from repro.core.border_router import Action, DropReason
from repro.core.config import ApnaConfig
from repro.crypto import backend as crypto_backend
from repro.experiments.common import build_bench_world
from repro.faults import FaultPlan
from repro.sharding import (
    ShardedDataPlane,
    SupervisorPolicy,
    run_issuance_shards,
    split_requests,
)
from repro.workload.packets import build_apna_pool

SHARD_COUNTS = (1, 2, 4)
BURST = 64
#: Bursts in flight per measured round (the pipelining depth).
ROUNDS = 8


def _preferred_backend() -> str:
    names = crypto_backend.available_backends()
    return "openssl" if "openssl" in names else names[0]


def _build(nshards: int):
    """A two-AS world (shard-pinned when ``nshards > 1``) plus one
    64-packet egress burst and a running plane of ``nshards`` workers."""
    backend = _preferred_backend()
    with crypto_backend.use_backend(backend):
        config = ApnaConfig(
            forwarding_shards=nshards if nshards > 1 else 0,
            forwarding_batch_size=BURST,
        )
        world = build_bench_world(seed=4321, hosts_per_as=4, config=config)
        as_a = world.asys("a")
        frames = build_apna_pool(
            as_a, world.hosts_a, size=512, count=BURST, dst_aid=200
        ).wire_frames
        if nshards > 1:
            plane = as_a.shard_pool
        else:
            plane = ShardedDataPlane.for_assembly(as_a, 1)
        # Warm every worker's per-host CMAC cache inside the context.
        for verdict in plane.process(frames, [True] * len(frames), as_a.clock()):
            assert verdict.action is Action.FORWARD_INTER
    return backend, world, plane, frames


@pytest.fixture(scope="module", params=SHARD_COUNTS)
def sharded_plane(request):
    nshards = request.param
    backend, world, plane, frames = _build(nshards)
    yield nshards, backend, world, plane, frames
    if plane is not world.asys("a").shard_pool:
        plane.close()
    world.close()


def test_sharded_egress_pipelined(benchmark, sharded_plane):
    """The scaling curve: ROUNDS pipelined 64-packet bursts per round,
    at 1/2/4 worker shards."""
    nshards, backend, world, plane, frames = sharded_plane
    as_a = world.asys("a")
    now = as_a.clock()
    egress = [True] * len(frames)

    def run_pipelined():
        tickets = [plane.submit(frames, egress, now) for _ in range(ROUNDS)]
        verdicts = None
        for ticket in tickets:
            verdicts = plane.collect(ticket)
        assert verdicts[-1].action is Action.FORWARD_INTER

    benchmark(run_pipelined)
    benchmark.extra_info["crypto_backend"] = backend
    benchmark.extra_info["shards"] = nshards
    benchmark.extra_info["burst_size"] = BURST
    benchmark.extra_info["bursts_per_round"] = ROUNDS
    benchmark.extra_info["packets_per_round"] = ROUNDS * BURST
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["paper_result"] = (
        "share-nothing processes scale with no coordination (§V-A3)"
    )


@pytest.fixture(scope="module")
def reference_world():
    """Single-process comparator world (same backend, same burst)."""
    backend = _preferred_backend()
    with crypto_backend.use_backend(backend):
        world = build_bench_world(
            seed=4321,
            hosts_per_as=4,
            config=ApnaConfig(forwarding_batch_size=BURST),
        )
        as_a = world.asys("a")
        packets = build_apna_pool(
            as_a, world.hosts_a, size=512, count=BURST, dst_aid=200
        ).apna_packets
        for verdict in as_a.br.process_batch(list(packets)):
            assert verdict.action is Action.FORWARD_INTER
    return backend, world, packets


@pytest.mark.parametrize("mode", ["scalar", "batch"])
def test_single_process_reference(benchmark, reference_world, mode):
    """The in-process loops over the identical workload (ROUNDS x 64
    packets) — the denominators of the scaling claim."""
    backend, world, packets = reference_world
    br = world.asys("a").br

    if mode == "scalar":

        def run_rounds():
            process = br.process_outgoing
            for _ in range(ROUNDS):
                for packet in packets:
                    verdict = process(packet)
            assert verdict.action is Action.FORWARD_INTER

    else:

        def run_rounds():
            for _ in range(ROUNDS):
                verdicts = br.process_batch(packets)
            assert verdicts[-1].action is Action.FORWARD_INTER

    benchmark(run_rounds)
    benchmark.extra_info["crypto_backend"] = backend
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["burst_size"] = BURST
    benchmark.extra_info["packets_per_round"] = ROUNDS * BURST
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["paper_result"] = (
        "2-shard throughput should beat this batch arm on multi-core hosts; "
        "sharded-vs-scalar should scale super-linearly"
    )


def test_dispatch_only_routing(benchmark, sharded_plane):
    """Dispatcher overhead in isolation: route one burst's frames to
    shards without any IPC — the budget the shards must amortise."""
    nshards, backend, world, plane, frames = sharded_plane

    def route_burst():
        total = 0
        for frame in frames:
            total += plane.shard_of_frame(frame)
        assert 0 <= total <= len(frames) * max(1, plane.nshards - 1)

    benchmark(route_burst)
    benchmark.extra_info["crypto_backend"] = backend
    benchmark.extra_info["shards"] = nshards
    benchmark.extra_info["burst_size"] = BURST


@pytest.mark.parametrize("routing", ["residue", "keyed"])
def test_dispatch_preroute_routing_mode(benchmark, routing):
    """The PR 8 acceptance arm: one burst's batched pre-route — exactly
    the ``owners_of_iv_bytes`` call ``submit`` makes over a 64-frame IV
    column — keyed (one bulk CMAC over the column) vs the old residue
    arithmetic it replaced."""
    from repro.sharding import ShardPlan

    backend = _preferred_backend()
    with crypto_backend.use_backend(backend):
        plan = ShardPlan(
            4,
            mode=routing,
            key=bytes(range(16)) if routing == "keyed" else None,
        ).validate_routing()
        # A Weyl sequence of IVs: cheap, deterministic, all distinct.
        iv_column = [
            ((i * 2654435761) % 2**32).to_bytes(4, "big") for i in range(BURST)
        ]
        owners = plan.owners_of_iv_bytes(iv_column)  # warm the router cache
        assert len(owners) == BURST

        def route_burst():
            assert len(plan.owners_of_iv_bytes(iv_column)) == BURST

        benchmark(route_burst)
    benchmark.extra_info["crypto_backend"] = backend
    benchmark.extra_info["routing"] = routing
    benchmark.extra_info["shards"] = 4
    benchmark.extra_info["burst_size"] = BURST
    benchmark.extra_info["acceptance"] = (
        "keyed pre-route within ~10% of residue at burst 64 on openssl"
    )


def _supervised_plane(world, policy):
    """A 2-shard plane over the world's AS ``a`` with an explicit
    supervision policy (``for_assembly`` would read it from config)."""
    as_a = world.asys("a")
    return ShardedDataPlane.from_parts(
        aid=as_a.aid,
        enc_key=as_a.keys.secret.ephid_enc,
        mac_key=as_a.keys.secret.ephid_mac,
        hostdb=as_a.hostdb,
        revocations=as_a.revocations,
        nshards=2,
        plan=as_a.shard_plan,
        crypto_backend=_preferred_backend(),
        packet_mac_size=world.asys("a").config.packet_mac_size,
        supervision=policy,
    )


@pytest.fixture(scope="module")
def recovery_plane():
    """A supervised 2-shard plane armed so every odd burst to shard 0
    SIGKILLs its worker — each measured round is one full failure cycle."""
    backend = _preferred_backend()
    with crypto_backend.use_backend(backend):
        config = ApnaConfig(forwarding_shards=2, forwarding_batch_size=BURST)
        world = build_bench_world(seed=4321, hosts_per_as=4, config=config)
        as_a = world.asys("a")
        frames = build_apna_pool(
            as_a, world.hosts_a, size=512, count=BURST, dst_aid=200
        ).wire_frames
        plane = _supervised_plane(
            world,
            SupervisorPolicy(
                reply_timeout=5.0, max_restarts=1_000_000, restart_backoff=0.001
            ),
        )
        # Warm burst: every shard at seq 0, before the kill schedule bites.
        plane.process(frames, [True] * len(frames), as_a.clock())
    plane.install_faults(
        FaultPlan({(0, seq): "kill" for seq in range(1, 10_000, 2)})
    )
    yield backend, world, plane, frames
    plane.close()
    world.close()


def test_shard_recovery_time(benchmark, recovery_plane):
    """Time-to-recover from a worker death: each round absorbs one
    SIGKILL (drop-and-count the widowed sub-burst, respawn the worker,
    resync hostdb/revocations over the pipe) and then carries one fully
    clean burst — the first post-resync verdicts."""
    backend, world, plane, frames = recovery_plane
    as_a = world.asys("a")
    now = as_a.clock()
    egress = [True] * len(frames)

    def kill_and_recover():
        crashed = plane.process(frames, egress, now)  # draws the kill
        assert any(
            v.reason is DropReason.SHARD_FAILURE for v in crashed
        ), "the kill schedule did not fire"
        recovered = plane.process(frames, egress, now)  # first clean burst
        assert all(v.action is Action.FORWARD_INTER for v in recovered)

    # Pedantic: every call kills and respawns a real process — a
    # macro-benchmark, not a calibrated microloop.
    benchmark.pedantic(kill_and_recover, rounds=10, iterations=1)
    benchmark.extra_info["crypto_backend"] = backend
    benchmark.extra_info["shards"] = 2
    benchmark.extra_info["burst_size"] = BURST
    benchmark.extra_info["restarts_observed"] = plane.stats()["restarts"]
    benchmark.extra_info["measures"] = (
        "per round: detect worker death, drop-and-count its sub-burst, "
        "respawn + state-resync the shard, then one clean 64-packet burst"
    )
    benchmark.extra_info["cpu_count"] = os.cpu_count()


@pytest.fixture(scope="module", params=["blocking", "supervised"])
def overhead_plane(request):
    """Identical 2-shard planes, differing only in the reply wait: the
    pre-PR-6 blocking ``recv`` (``reply_timeout=None``) vs the bounded
    ``poll``-then-``recv`` the supervisor needs for hang detection."""
    mode = request.param
    backend = _preferred_backend()
    with crypto_backend.use_backend(backend):
        config = ApnaConfig(forwarding_shards=2, forwarding_batch_size=BURST)
        world = build_bench_world(seed=4321, hosts_per_as=4, config=config)
        as_a = world.asys("a")
        frames = build_apna_pool(
            as_a, world.hosts_a, size=512, count=BURST, dst_aid=200
        ).wire_frames
        plane = _supervised_plane(
            world,
            SupervisorPolicy(
                reply_timeout=None if mode == "blocking" else 5.0
            ),
        )
        plane.process(frames, [True] * len(frames), as_a.clock())  # warm
    yield mode, backend, world, plane, frames
    plane.close()
    world.close()


def test_supervision_steady_state_overhead(benchmark, overhead_plane):
    """The price of being supervisable when nothing fails: the same
    pipelined workload as the scaling curve, with and without the
    bounded reply wait.  The two arms should be within noise of each
    other — supervision must cost ~nothing on the happy path."""
    mode, backend, world, plane, frames = overhead_plane
    as_a = world.asys("a")
    now = as_a.clock()
    egress = [True] * len(frames)

    def run_pipelined():
        tickets = [plane.submit(frames, egress, now) for _ in range(ROUNDS)]
        verdicts = None
        for ticket in tickets:
            verdicts = plane.collect(ticket)
        assert verdicts[-1].action is Action.FORWARD_INTER

    benchmark(run_pipelined)
    benchmark.extra_info["crypto_backend"] = backend
    benchmark.extra_info["reply_wait"] = mode
    benchmark.extra_info["shards"] = 2
    benchmark.extra_info["burst_size"] = BURST
    benchmark.extra_info["packets_per_round"] = ROUNDS * BURST
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["paper_result"] = (
        "hang detection (bounded poll) must not tax the §V-A3 curve"
    )


def test_sharded_ms_issuance(benchmark):
    """E1's machinery at bench scale: one share-nothing issuance round
    over min(4, cpu) workers (each times its own full-path loop)."""
    workers = max(1, min(4, os.cpu_count() or 1))
    counts = split_requests(48, workers)

    def run_issuance():
        results = run_issuance_shards(counts)
        assert sum(done for done, _ in results) == 48

    # Pedantic: each call spawns processes and builds worlds — a
    # macro-benchmark where two rounds beat a long calibration.
    benchmark.pedantic(run_issuance, rounds=2, iterations=1)
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["requests"] = 48
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["paper_result"] = (
        "500k EphIDs in 6.9s over 4 share-nothing processes"
    )
