"""Evaluation-runner bench — one arm per adversarial/churn preset.

Times a full invariant-checked scenario run (world build, population
registration, shard-pool spawn, traffic, verdict oracle, teardown) for
each preset the PR 10 evaluation pack registers.  The paper-shape
verdict attached to every arm is the runner's own: every declared
invariant held.  ``churn`` additionally proves its crash storm fired
and converged, which makes this the one benchmark that times the
recovery path end to end.
"""

import pytest

from repro.evaluation import EvaluationRunner

SCALE = 10_000


def _run(preset, *, chaos=False, seed=7):
    runner = EvaluationRunner(
        scale=SCALE,
        seed=seed,
        nshards=2,
        chaos=chaos,
        burst_size=64,
        max_sources=128,
    )
    return runner.run(preset)


@pytest.mark.parametrize(
    "preset",
    ["flash-crowd", "revocation-wave", "migration", "shutoff-storm", "churn"],
)
def test_evaluation_preset(benchmark, preset):
    report = benchmark.pedantic(lambda: _run(preset), rounds=2, iterations=1)
    assert report.passed, "\n".join(f.render() for f in report.failures())
    benchmark.extra_info["population"] = report.population
    benchmark.extra_info["packets"] = report.packets
    benchmark.extra_info["delivered"] = report.delivered
    benchmark.extra_info["invariants"] = len(report.invariants)
    benchmark.extra_info["p99_ms"] = report.latency.get("p99_ms")


def test_evaluation_chaos_composition(benchmark):
    """A crash storm layered on revocation-wave: losses stay exact."""
    report = benchmark.pedantic(
        lambda: _run("revocation-wave", chaos=True, seed=11),
        rounds=2,
        iterations=1,
    )
    assert report.passed, "\n".join(f.render() for f in report.failures())
    benchmark.extra_info["packets"] = report.packets
    benchmark.extra_info["shard_failures"] = report.drop_reasons.get(
        "shard-failure", 0
    )
    benchmark.extra_info["invariants"] = len(report.invariants)
