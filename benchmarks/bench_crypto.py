"""E9 bench — crypto micro-costs underlying every paper number.

The paper's performance rests on AES-NI (EphID ops, packet MACs) and
ed25519 REF10 (certificates).  Every micro-benchmark here runs once per
available crypto backend (``pure`` vs ``openssl``, see
:mod:`repro.crypto.backend`), reproducing the paper's software-vs-AES-NI
comparison directly: the ``openssl`` rows are the AES-NI data path, the
``pure`` rows are the software baseline.  The data-plane AEAD ablation
(GCM, the paper's cited mode, vs Encrypt-then-MAC) rides the same axis.
"""

import pytest

from repro.crypto import AES, Cmac
from repro.crypto import backend as crypto_backend
from repro.crypto.aead import EtmScheme, GcmScheme
from repro.crypto.kdf import hkdf
from repro.crypto.modes import ctr_xcrypt

KEY16 = bytes(range(16))
KEY32 = bytes(range(32))

BACKENDS = crypto_backend.available_backends()


@pytest.fixture(params=BACKENDS)
def backend_name(request):
    return request.param


@pytest.fixture
def provider(backend_name, benchmark):
    benchmark.extra_info["crypto_backend"] = backend_name
    return crypto_backend.get_backend(backend_name)


def test_aes_block_encrypt(benchmark, provider):
    cipher = AES(KEY16, backend=provider)
    benchmark(cipher.encrypt_block, bytes(16))


@pytest.mark.parametrize("size", [64, 1518], ids=["64B", "1518B"])
def test_aes_ctr_xcrypt(benchmark, provider, size):
    """Bulk CTR — the paper's per-packet AES operation at both ends of
    the Fig. 8 size range."""
    cipher = AES(KEY16, backend=provider)
    payload = bytes(size)
    counter = bytes(16)
    benchmark(ctr_xcrypt, cipher, counter, payload)
    benchmark.extra_info["packet_size"] = size


def test_cmac_64_byte_packet(benchmark, provider):
    mac = Cmac(KEY16, backend=provider)
    benchmark(mac.tag, bytes(64), 8)


def test_cmac_1518_byte_packet(benchmark, provider):
    mac = Cmac(KEY16, backend=provider)
    benchmark(mac.tag, bytes(1518), 8)


@pytest.mark.parametrize("scheme_cls", [EtmScheme, GcmScheme], ids=["etm", "gcm"])
def test_aead_seal_512(benchmark, provider, scheme_cls):
    """The data-plane ablation: EtM vs GCM on a 512-byte payload."""
    scheme = scheme_cls(KEY32, backend=provider)
    nonce = bytes(12)
    benchmark(scheme.seal, nonce, bytes(512))


@pytest.mark.parametrize("scheme_cls", [EtmScheme, GcmScheme], ids=["etm", "gcm"])
def test_aead_open_512(benchmark, provider, scheme_cls):
    scheme = scheme_cls(KEY32, backend=provider)
    nonce = bytes(12)
    sealed = scheme.seal(nonce, bytes(512))
    benchmark(scheme.open, nonce, sealed)


def test_x25519_shared_secret(benchmark, provider):
    """The per-session ECDH (connection establishment)."""
    peer = provider.x25519_public_key(b"\x01" * 32)
    benchmark(provider.x25519_shared_secret, b"\x02" * 32, peer)


def test_ed25519_sign(benchmark, provider):
    """Certificate issuance cost at the MS."""
    benchmark(provider.ed25519_sign, bytes(32), b"certificate tbs bytes")


def test_ed25519_verify(benchmark, provider):
    """Certificate verification cost at hosts and the AA."""
    public = provider.ed25519_public_key(bytes(32))
    signature = provider.ed25519_sign(bytes(32), b"certificate tbs bytes")
    benchmark(provider.ed25519_verify, public, b"certificate tbs bytes", signature)


def test_hkdf_session_key(benchmark, backend_name, provider):
    with crypto_backend.use_backend(provider):
        benchmark(hkdf, bytes(32), info=b"apna-session-v1:" + bytes(32), length=32)


def test_ephid_codec_open(benchmark, provider):
    """The Fig. 6 EphID decode — the paper's headline 'one MAC check plus
    one AES operation' per-packet cost, per backend."""
    from repro.core.ephid import EphIdCodec

    codec = EphIdCodec(bytes(16), bytes(range(16)), backend=provider)
    ephid = codec.seal(hid=0x10000, exp_time=10**9, iv=42)
    benchmark(codec.open, ephid)
    benchmark.extra_info["paper_result"] = "1 MAC check + 1 AES op per packet"
