"""E9 bench — crypto micro-costs underlying every paper number.

The paper's performance rests on AES-NI (EphID ops, packet MACs) and
ed25519 REF10 (certificates).  These micro-benchmarks expose where the
pure-Python reproduction pays, and ablate the data-plane AEAD choice
(GCM, the paper's cited mode, vs the default Encrypt-then-MAC).
"""

import pytest

from repro.crypto import AES, Cmac, ed25519, x25519
from repro.crypto.aead import EtmScheme, GcmScheme
from repro.crypto.kdf import hkdf

KEY16 = bytes(range(16))
KEY32 = bytes(range(32))


def test_aes_block_encrypt(benchmark):
    cipher = AES(KEY16)
    benchmark(cipher.encrypt_block, bytes(16))


def test_cmac_64_byte_packet(benchmark):
    mac = Cmac(KEY16)
    benchmark(mac.tag, bytes(64), 8)


def test_cmac_1518_byte_packet(benchmark):
    mac = Cmac(KEY16)
    benchmark(mac.tag, bytes(1518), 8)


@pytest.mark.parametrize("scheme_cls", [EtmScheme, GcmScheme], ids=["etm", "gcm"])
def test_aead_seal_512(benchmark, scheme_cls):
    """The data-plane ablation: EtM vs GCM on a 512-byte payload."""
    scheme = scheme_cls(KEY32)
    nonce = bytes(12)
    benchmark(scheme.seal, nonce, bytes(512))


@pytest.mark.parametrize("scheme_cls", [EtmScheme, GcmScheme], ids=["etm", "gcm"])
def test_aead_open_512(benchmark, scheme_cls):
    scheme = scheme_cls(KEY32)
    nonce = bytes(12)
    sealed = scheme.seal(nonce, bytes(512))
    benchmark(scheme.open, nonce, sealed)


def test_x25519_shared_secret(benchmark):
    """The per-session ECDH (connection establishment)."""
    peer = x25519.public_key(b"\x01" * 32)
    benchmark(x25519.shared_secret, b"\x02" * 32, peer)


def test_ed25519_sign(benchmark):
    """Certificate issuance cost at the MS."""
    benchmark(ed25519.sign, bytes(32), b"certificate tbs bytes")


def test_ed25519_verify(benchmark):
    """Certificate verification cost at hosts and the AA."""
    public = ed25519.public_key(bytes(32))
    signature = ed25519.sign(bytes(32), b"certificate tbs bytes")
    benchmark(ed25519.verify, public, b"certificate tbs bytes", signature)


def test_hkdf_session_key(benchmark):
    benchmark(hkdf, bytes(32), info=b"apna-session-v1:" + bytes(32), length=32)
