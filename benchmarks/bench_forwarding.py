"""E2/E3 bench — border-router forwarding at the Fig. 8 packet sizes.

Paper: line-rate forwarding (120 Gbps testbed) at every size; the APNA
checks add no penalty.  Here each size is a separate benchmark so the
pps-vs-size series of Fig. 8(a) falls out of the benchmark table, and
the calibrated-capacity verdict is attached as extra_info.
"""

import pytest

from repro.baselines.plain_ip import PlainIpRouter, RoutingTable
from repro.core.border_router import Action
from repro.wire import gre
from repro.wire.apna import ApnaPacket
from repro.workload.packets import PAPER_PACKET_SIZES, build_apna_pool, build_ipv4_pool


@pytest.fixture(scope="module")
def pools(bench_world):
    return {
        size: build_apna_pool(
            bench_world.as_a, bench_world.hosts_a, size=size, count=64, dst_aid=200
        )
        for size in PAPER_PACKET_SIZES
    }


@pytest.mark.parametrize("size", PAPER_PACKET_SIZES)
def test_apna_egress_pipeline(benchmark, bench_world, pools, size):
    """Fig. 8(a): full egress path (parse + Fig. 4 checks + GRE encap)."""
    br = bench_world.as_a.br
    frames = pools[size].wire_frames
    state = {"i": 0}

    def forward_one():
        frame = frames[state["i"] % len(frames)]
        state["i"] += 1
        packet = ApnaPacket.from_wire(frame)
        verdict = br.process_outgoing(packet)
        assert verdict.action is Action.FORWARD_INTER
        gre.encapsulate(frame, src_ip=100, dst_ip=verdict.next_aid)

    benchmark(forward_one)
    benchmark.extra_info["packet_size"] = size
    benchmark.extra_info["paper_result"] = "line-rate at every size"


@pytest.mark.parametrize("size", PAPER_PACKET_SIZES)
def test_apna_ingress_pipeline(benchmark, bench_world, pools, size):
    """Fig. 4 top: destination-side checks (EphID decode + validity)."""
    # Packets destined to AS 100 hosts: reuse egress pool reversed.
    br = bench_world.as_a.br
    reversed_packets = []
    for packet in pools[size].apna_packets[:32]:
        header = packet.header.reversed()
        reversed_packets.append(ApnaPacket(header, packet.payload))
    state = {"i": 0}

    def deliver_one():
        packet = reversed_packets[state["i"] % len(reversed_packets)]
        state["i"] += 1
        verdict = br.process_incoming(packet)
        assert verdict.action is Action.FORWARD_INTRA

    benchmark(deliver_one)
    benchmark.extra_info["packet_size"] = size


@pytest.mark.parametrize("size", PAPER_PACKET_SIZES)
def test_plain_ipv4_baseline(benchmark, size):
    """The 'theoretical maximum' software comparator."""
    routes = RoutingTable()
    routes.add(0, 0, "up")
    router = PlainIpRouter(routes)
    frames = build_ipv4_pool(size=size, count=64).wire_frames
    state = {"i": 0}

    def forward_one():
        router.process(frames[state["i"] % len(frames)])
        state["i"] += 1

    benchmark(forward_one)
    benchmark.extra_info["packet_size"] = size


def test_transit_forwarding(benchmark, bench_world, pools):
    """Transit ASes forward by AID only — no crypto (Section IV-D3)."""
    br = bench_world.as_b.br  # not the destination for dst_aid=65000 packets
    pool = build_apna_pool(
        bench_world.as_a, bench_world.hosts_a, size=256, count=64, dst_aid=65000
    )
    packets = pool.apna_packets
    state = {"i": 0}

    def transit_one():
        verdict = br.process_incoming(packets[state["i"] % len(packets)])
        state["i"] += 1
        assert verdict.action is Action.FORWARD_INTER

    benchmark(transit_one)
