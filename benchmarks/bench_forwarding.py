"""E2/E3 bench — border-router forwarding at the Fig. 8 packet sizes.

Paper: line-rate forwarding (120 Gbps testbed) at every size; the APNA
checks add no penalty.  Here each size is a separate benchmark so the
pps-vs-size series of Fig. 8(a) falls out of the benchmark table, and
the calibrated-capacity verdict is attached as extra_info.

The backend-axis benchmark runs the same egress pipeline over a world
built per crypto backend (``pure`` vs ``openssl``), reproducing the
paper's AES-NI-vs-software forwarding comparison end to end (EphID open
+ CMAC verify per packet).

The burst benchmarks add the batch-vs-scalar axis on top: the same
64-packet burst goes once through the scalar per-packet loop and once
through ``BorderRouter.process_batch`` (the paper's §V-B burst regime),
per crypto backend — four arms whose ratios are the Python-dispatch
amortisation and the AES-NI gap respectively.
"""

import pytest

from repro.baselines.plain_ip import PlainIpRouter, RoutingTable
from repro.core.border_router import Action
from repro.crypto import backend as crypto_backend
from repro.experiments.common import build_bench_world
from repro.wire import gre
from repro.wire.apna import ApnaPacket
from repro.workload.packets import PAPER_PACKET_SIZES, build_apna_pool, build_ipv4_pool


@pytest.fixture(scope="module")
def pools(bench_world):
    return {
        size: build_apna_pool(
            bench_world.as_a, bench_world.hosts_a, size=size, count=64, dst_aid=200
        )
        for size in PAPER_PACKET_SIZES
    }


@pytest.mark.parametrize("size", PAPER_PACKET_SIZES)
def test_apna_egress_pipeline(benchmark, bench_world, pools, size):
    """Fig. 8(a): full egress path (parse + Fig. 4 checks + GRE encap)."""
    br = bench_world.as_a.br
    frames = pools[size].wire_frames
    state = {"i": 0}

    def forward_one():
        frame = frames[state["i"] % len(frames)]
        state["i"] += 1
        packet = ApnaPacket.from_wire(frame)
        verdict = br.process_outgoing(packet)
        assert verdict.action is Action.FORWARD_INTER
        gre.encapsulate(frame, src_ip=100, dst_ip=verdict.next_aid)

    benchmark(forward_one)
    benchmark.extra_info["packet_size"] = size
    benchmark.extra_info["paper_result"] = "line-rate at every size"


@pytest.mark.parametrize("size", PAPER_PACKET_SIZES)
def test_apna_ingress_pipeline(benchmark, bench_world, pools, size):
    """Fig. 4 top: destination-side checks (EphID decode + validity)."""
    # Packets destined to AS 100 hosts: reuse egress pool reversed.
    br = bench_world.as_a.br
    reversed_packets = []
    for packet in pools[size].apna_packets[:32]:
        header = packet.header.reversed()
        reversed_packets.append(ApnaPacket(header, packet.payload))
    state = {"i": 0}

    def deliver_one():
        packet = reversed_packets[state["i"] % len(reversed_packets)]
        state["i"] += 1
        verdict = br.process_incoming(packet)
        assert verdict.action is Action.FORWARD_INTRA

    benchmark(deliver_one)
    benchmark.extra_info["packet_size"] = size


@pytest.mark.parametrize("size", PAPER_PACKET_SIZES)
def test_plain_ipv4_baseline(benchmark, size):
    """The 'theoretical maximum' software comparator."""
    routes = RoutingTable()
    routes.add(0, 0, "up")
    router = PlainIpRouter(routes)
    frames = build_ipv4_pool(size=size, count=64).wire_frames
    state = {"i": 0}

    def forward_one():
        router.process(frames[state["i"] % len(frames)])
        state["i"] += 1

    benchmark(forward_one)
    benchmark.extra_info["packet_size"] = size


@pytest.fixture(scope="module", params=crypto_backend.available_backends())
def backend_world(request):
    """A bench world whose entire crypto substrate is pinned to one backend.

    The packet pool is built and the border router's lazy per-host CMAC
    cache is warmed *inside* the pinned-backend context, so the timed
    loop runs every crypto operation on the requested backend.
    """
    with crypto_backend.use_backend(request.param):
        world = build_bench_world(seed=4321, hosts_per_as=2)
        frames = build_apna_pool(
            world.as_a, world.hosts_a, size=512, count=64, dst_aid=200
        ).wire_frames
        for frame in frames:
            verdict = world.as_a.br.process_outgoing(ApnaPacket.from_wire(frame))
            assert verdict.action is Action.FORWARD_INTER
    return request.param, world, frames


def test_apna_egress_backend_axis(benchmark, backend_world):
    """Fig. 8(a) at 512B, per crypto backend: the software-vs-AES-NI gap
    on the full per-packet verdict path (EphID open + CMAC check)."""
    name, world, frames = backend_world
    br = world.as_a.br
    state = {"i": 0}

    def forward_one():
        frame = frames[state["i"] % len(frames)]
        state["i"] += 1
        packet = ApnaPacket.from_wire(frame)
        verdict = br.process_outgoing(packet)
        assert verdict.action is Action.FORWARD_INTER
        gre.encapsulate(frame, src_ip=100, dst_ip=verdict.next_aid)

    benchmark(forward_one)
    benchmark.extra_info["crypto_backend"] = name
    benchmark.extra_info["packet_size"] = 512
    benchmark.extra_info["paper_result"] = "AES-NI keeps APNA at line rate"


BURST_SIZE = 64


@pytest.fixture(scope="module", params=crypto_backend.available_backends())
def burst_world(request):
    """A backend-pinned world plus one parsed 64-packet burst."""
    with crypto_backend.use_backend(request.param):
        world = build_bench_world(seed=4321, hosts_per_as=2)
        packets = build_apna_pool(
            world.as_a, world.hosts_a, size=512, count=BURST_SIZE, dst_aid=200
        ).apna_packets
        # Warm the router's lazy per-host CMAC cache inside the context.
        for verdict in world.as_a.br.process_batch(list(packets)):
            assert verdict.action is Action.FORWARD_INTER
    return request.param, world, packets


@pytest.mark.parametrize("mode", ["scalar", "batch"])
def test_apna_egress_burst64(benchmark, burst_world, mode):
    """Batch-vs-scalar x pure-vs-openssl: one 64-packet burst per round.

    The acceptance bar from the ROADMAP's batched-verdict-loop item:
    ``process_batch`` at burst 64 on the openssl backend is at least 2x
    the per-packet loop (one clock read + one prune per burst, deduped
    bulk EphID opens, per-HID grouped MACs).
    """
    name, world, packets = burst_world
    br = world.as_a.br

    if mode == "scalar":

        def run_burst():
            process = br.process_outgoing
            for packet in packets:
                verdict = process(packet)
            assert verdict.action is Action.FORWARD_INTER

    else:

        def run_burst():
            verdicts = br.process_batch(packets)
            assert verdicts[-1].action is Action.FORWARD_INTER

    benchmark(run_burst)
    benchmark.extra_info["crypto_backend"] = name
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["burst_size"] = BURST_SIZE
    benchmark.extra_info["packet_size"] = 512
    benchmark.extra_info["paper_result"] = (
        "verdicts are computed per burst (DPDK rx burst), not per packet"
    )


@pytest.mark.parametrize("mode", ["scalar", "batch"])
def test_apna_ingress_burst64(benchmark, burst_world, mode):
    """Ingress counterpart of the burst axis (destination-side checks)."""
    name, world, packets = burst_world
    br = world.as_a.br
    reversed_packets = [
        ApnaPacket(packet.header.reversed(), packet.payload)
        for packet in packets
    ]

    if mode == "scalar":

        def run_burst():
            process = br.process_incoming
            for packet in reversed_packets:
                verdict = process(packet)
            assert verdict.action is Action.FORWARD_INTRA

    else:

        def run_burst():
            verdicts = br.process_incoming_batch(reversed_packets)
            assert verdicts[-1].action is Action.FORWARD_INTRA

    benchmark(run_burst)
    benchmark.extra_info["crypto_backend"] = name
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["burst_size"] = BURST_SIZE


@pytest.fixture(scope="module", params=crypto_backend.available_backends())
def sharded_burst_world(request):
    """A 2-shard world (IV-pinned issuance, live worker pool) plus the
    same 64-packet burst the scalar/batch arms use."""
    from repro.core.config import ApnaConfig

    with crypto_backend.use_backend(request.param):
        world = build_bench_world(
            seed=4321,
            hosts_per_as=2,
            config=ApnaConfig(forwarding_shards=2, forwarding_batch_size=BURST_SIZE),
        )
        as_a = world.asys("a")
        frames = build_apna_pool(
            as_a, world.hosts_a, size=512, count=BURST_SIZE, dst_aid=200
        ).wire_frames
        # Warm the workers' per-host CMAC caches inside the context.
        for verdict in as_a.shard_pool.process(
            frames, [True] * len(frames), as_a.clock()
        ):
            assert verdict.action is Action.FORWARD_INTER
    yield request.param, world, frames
    world.close()


def test_apna_egress_burst64_sharded2(benchmark, sharded_burst_world):
    """The third row of the burst table: the same 64-packet burst,
    synchronously through the 2-shard worker pool (one IPC round-trip
    per shard per burst, no pipelining — the per-burst latency view;
    ``bench_sharding`` measures the pipelined throughput curve)."""
    name, world, frames = sharded_burst_world
    as_a = world.asys("a")
    plane = as_a.shard_pool
    now = as_a.clock()
    egress = [True] * len(frames)

    def run_burst():
        verdicts = plane.process(frames, egress, now)
        assert verdicts[-1].action is Action.FORWARD_INTER

    benchmark(run_burst)
    benchmark.extra_info["crypto_backend"] = name
    benchmark.extra_info["mode"] = "sharded2"
    benchmark.extra_info["burst_size"] = BURST_SIZE
    benchmark.extra_info["packet_size"] = 512
    benchmark.extra_info["paper_result"] = (
        "share-nothing worker processes extend the burst loop (§V-A3)"
    )


def test_transit_forwarding(benchmark, bench_world, pools):
    """Transit ASes forward by AID only — no crypto (Section IV-D3)."""
    br = bench_world.as_b.br  # not the destination for dst_aid=65000 packets
    pool = build_apna_pool(
        bench_world.as_a, bench_world.hosts_a, size=256, count=64, dst_aid=65000
    )
    packets = pool.apna_packets
    state = {"i": 0}

    def transit_one():
        verdict = br.process_incoming(packets[state["i"] % len(packets)])
        state["i"] += 1
        assert verdict.action is Action.FORWARD_INTER

    benchmark(transit_one)
