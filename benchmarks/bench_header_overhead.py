"""E8 bench — header processing and goodput overhead (Fig. 7, VII-D)."""

import pytest

from repro.experiments import e8_overhead
from repro.wire import gre
from repro.wire.apna import ApnaHeader, ApnaPacket
from repro.workload.packets import PAPER_PACKET_SIZES


def _packet(payload_size: int) -> ApnaPacket:
    header = ApnaHeader(
        src_aid=100,
        src_ephid=bytes(range(16)),
        dst_ephid=bytes(range(16, 32)),
        dst_aid=200,
        mac=b"\xaa" * 8,
    )
    return ApnaPacket(header, bytes(payload_size))


def test_header_pack(benchmark):
    packet = _packet(208)
    benchmark(packet.to_wire)


def test_header_parse(benchmark):
    wire = _packet(208).to_wire()
    benchmark(ApnaPacket.from_wire, wire)


def test_gre_encapsulation(benchmark):
    wire = _packet(208).to_wire()
    benchmark(gre.encapsulate, wire, 100, 200)


def test_gre_decapsulation(benchmark):
    wire = gre.encapsulate(_packet(208).to_wire(), 100, 200)
    benchmark(gre.decapsulate, wire)


def test_e8_goodput_shape(benchmark):
    """Deployed goodput exceeds 90% at MTU-sized packets."""
    result = benchmark.pedantic(
        lambda: e8_overhead.run(quiet=True), rounds=1, iterations=1
    )
    for point in result.points:
        benchmark.extra_info[f"goodput_{point.size}B"] = (
            f"{100 * point.apna_deployed_goodput:.1f}%"
        )
    assert result.overhead_acceptable
