"""Shared fixtures for the benchmark suite.

Each ``bench_*`` module regenerates one paper artifact (see DESIGN.md's
experiment index).  Wall-clock numbers are machine-dependent; the
paper-shape verdicts are attached as ``extra_info`` on each benchmark.

Every benchmark also records the active crypto backend (``pure`` or
``openssl``, see :mod:`repro.crypto.backend`) in ``extra_info``, and the
crypto/forwarding/EphID benches carry an explicit backend-comparison
axis reproducing the paper's software-vs-AES-NI gap.

Smoke mode
----------

``pytest benchmarks -q --smoke`` (or ``REPRO_BENCH_SMOKE=1``) runs every
benchmark body exactly once with no timing calibration — an import- and
run-check fast enough for CI tier-1, without the long measurement loops.

Trajectory persistence
----------------------

``pytest benchmarks --bench-json PATH`` dumps one JSON document with a
record per benchmark: nodeid, the active crypto backend, the full
``extra_info`` (including the paper-shape verdicts) and — outside smoke
mode — the timing statistics.  Appending these files over time gives the
repo a performance trajectory across PRs.
"""

import json
import os
import platform
import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.crypto import active_backend  # noqa: E402
from repro.experiments.common import build_bench_world  # noqa: E402


_BENCH_DIR = Path(__file__).resolve().parent
_BENCH_RECORDS: list[dict] = []


def pytest_collect_file(file_path, parent):
    """Collect ``bench_*.py`` modules — but only when the benchmarks
    directory (or a file in it) was named on the command line, so a plain
    ``pytest`` from the repo root never drags the timing suite into the
    unit-test pass."""
    if file_path.suffix != ".py" or not file_path.name.startswith("bench_"):
        return None
    args = [
        Path(arg.split("::")[0]).resolve()
        for arg in parent.config.invocation_params.args
        if not str(arg).startswith("-")
    ]
    targeted = any(arg == _BENCH_DIR or _BENCH_DIR in arg.parents for arg in args)
    explicit = file_path in args
    if targeted and not explicit:
        return pytest.Module.from_parent(parent, path=file_path)
    return None


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="run each benchmark once, untimed (fast import/run check)",
    )
    parser.addoption(
        "--bench-json",
        action="store",
        default=None,
        metavar="PATH",
        help="dump per-benchmark timings, crypto backend and paper-shape "
        "verdicts to PATH as JSON",
    )


def pytest_configure(config):
    env_smoke = os.environ.get("REPRO_BENCH_SMOKE", "0").lower()
    if config.getoption("--smoke") or env_smoke not in ("", "0", "false", "no", "off"):
        # pytest-benchmark's own configure hook (plugins run after
        # conftest hooks) picks this up and runs each benchmarked
        # callable exactly once without calibration.
        config.option.benchmark_disable = True


@pytest.fixture(autouse=True)
def _bench_backend_record(request):
    """Stamp the active crypto backend on every benchmark and collect the
    per-benchmark record for ``--bench-json``."""
    bench = (
        request.getfixturevalue("benchmark")
        if "benchmark" in request.fixturenames
        else None
    )
    yield
    if bench is None:
        return
    bench.extra_info.setdefault("crypto_backend", active_backend().name)
    record = {
        "name": request.node.nodeid,
        "crypto_backend": bench.extra_info["crypto_backend"],
        "extra_info": dict(bench.extra_info),
    }
    stats_meta = getattr(bench, "stats", None)
    stats = getattr(stats_meta, "stats", None)
    if stats is not None:
        record["timing"] = {
            "mean_s": stats.mean,
            "min_s": stats.min,
            "stddev_s": stats.stddev,
            "rounds": stats.rounds,
            "ops_per_sec": (1.0 / stats.mean) if stats.mean else None,
        }
    _BENCH_RECORDS.append(record)


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--bench-json", default=None)
    if not path:
        return
    payload = {
        "created_unix": time.time(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "smoke": bool(session.config.option.benchmark_disable),
        "default_crypto_backend": active_backend().name,
        "benchmarks": _BENCH_RECORDS,
    }
    Path(path).write_text(json.dumps(payload, indent=2, default=str) + "\n")


@pytest.fixture(scope="module")
def bench_world():
    return build_bench_world(seed=1234, hosts_per_as=2)


@pytest.fixture(scope="module")
def bench_host(bench_world):
    return bench_world.hosts_a[0]
