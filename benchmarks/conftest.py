"""Shared fixtures for the benchmark suite.

Each ``bench_*`` module regenerates one paper artifact (see DESIGN.md's
experiment index).  Wall-clock numbers are machine-dependent; the
paper-shape verdicts are attached as ``extra_info`` on each benchmark.

Smoke mode
----------

``pytest benchmarks -q --smoke`` (or ``REPRO_BENCH_SMOKE=1``) runs every
benchmark body exactly once with no timing calibration — an import- and
run-check fast enough for CI tier-1, without the long measurement loops.
"""

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.common import build_bench_world  # noqa: E402


_BENCH_DIR = Path(__file__).resolve().parent


def pytest_collect_file(file_path, parent):
    """Collect ``bench_*.py`` modules — but only when the benchmarks
    directory (or a file in it) was named on the command line, so a plain
    ``pytest`` from the repo root never drags the timing suite into the
    unit-test pass."""
    if file_path.suffix != ".py" or not file_path.name.startswith("bench_"):
        return None
    args = [
        Path(arg.split("::")[0]).resolve()
        for arg in parent.config.invocation_params.args
        if not str(arg).startswith("-")
    ]
    targeted = any(arg == _BENCH_DIR or _BENCH_DIR in arg.parents for arg in args)
    explicit = file_path in args
    if targeted and not explicit:
        return pytest.Module.from_parent(parent, path=file_path)
    return None


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="run each benchmark once, untimed (fast import/run check)",
    )


def pytest_configure(config):
    env_smoke = os.environ.get("REPRO_BENCH_SMOKE", "0").lower()
    if config.getoption("--smoke") or env_smoke not in ("", "0", "false", "no", "off"):
        # pytest-benchmark's own configure hook (plugins run after
        # conftest hooks) picks this up and runs each benchmarked
        # callable exactly once without calibration.
        config.option.benchmark_disable = True


@pytest.fixture(scope="module")
def bench_world():
    return build_bench_world(seed=1234, hosts_per_as=2)


@pytest.fixture(scope="module")
def bench_host(bench_world):
    return bench_world.hosts_a[0]
