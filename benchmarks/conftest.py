"""Shared fixtures for the benchmark suite.

Each ``bench_*`` module regenerates one paper artifact (see DESIGN.md's
experiment index).  Wall-clock numbers are machine-dependent; the
paper-shape verdicts are attached as ``extra_info`` on each benchmark.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.common import build_bench_world  # noqa: E402


@pytest.fixture(scope="module")
def bench_world():
    return build_bench_world(seed=1234, hosts_per_as=2)


@pytest.fixture(scope="module")
def bench_host(bench_world):
    return bench_world.hosts_a[0]
