"""E11 bench — path-validation cost (paper Section VIII-C ablation).

The strengthened shutoff needs Passport stamps on the data path; these
benchmarks quantify what the combination costs per packet: stamping at
the source AS (scales with path length), per-hop verification (constant)
and the OPT chain for endpoint-verifiable paths.
"""

import pytest

from repro.crypto import backend as crypto_backend
from repro.experiments.e11_pathval import build_chain
from repro.pathval import (
    AsPairwiseKeys,
    OnPathShutoffRequest,
    OptSession,
    PassportStamper,
    PassportVerifier,
    upgrade_to_onpath,
)
from repro.wire.apna import Endpoint


@pytest.fixture(scope="module")
def chain_world():
    network, rpki, ases = build_chain(8, seed=1101)
    alice = ases[0].attach_host("alice")
    bob = ases[-1].attach_host("bob")
    alice.bootstrap()
    bob.bootstrap()
    network.compute_routes()
    owned = alice.acquire_ephid_direct()
    peer = bob.acquire_ephid_direct()
    packet = alice.stack.make_packet(
        owned.ephid, Endpoint(ases[-1].aid, peer.ephid), b"x" * 512
    )
    return {
        "rpki": rpki,
        "ases": ases,
        "alice": alice,
        "bob": bob,
        "owned": owned,
        "peer": peer,
        "packet": packet,
    }


@pytest.mark.parametrize("path_length", [2, 4, 8])
def test_passport_stamp(benchmark, chain_world, path_length):
    """Source-AS stamping: one CMAC per downstream AS."""
    ases = chain_world["ases"]
    source = ases[0]
    downstream = [a.aid for a in ases[1:path_length]]
    stamper = PassportStamper(
        AsPairwiseKeys(source.aid, source.keys.exchange, chain_world["rpki"])
    )
    packet = chain_world["packet"]
    stamper.stamp(packet, downstream)  # warm the pairwise-key cache

    benchmark(stamper.stamp, packet, downstream)
    benchmark.extra_info["path_length"] = path_length
    benchmark.extra_info["expected_shape"] = "cost ~ path length"


@pytest.mark.parametrize("backend_name", crypto_backend.available_backends())
def test_passport_verify(benchmark, chain_world, backend_name):
    """Per-hop verification: one CMAC regardless of path length — per
    crypto backend, since this is a pure data-plane symmetric-crypto op."""
    ases = chain_world["ases"]
    source, transit = ases[0], ases[1]
    packet = chain_world["packet"]
    with crypto_backend.use_backend(backend_name):
        stamper = PassportStamper(
            AsPairwiseKeys(source.aid, source.keys.exchange, chain_world["rpki"])
        )
        verifier = PassportVerifier(
            AsPairwiseKeys(transit.aid, transit.keys.exchange, chain_world["rpki"])
        )
        passport = stamper.stamp(packet, [a.aid for a in ases[1:]])
        # Warm the lazy pairwise-key/CMAC caches under the pinned backend.
        assert verifier.verify(packet, passport)

    benchmark(verifier.verify, packet, passport)
    benchmark.extra_info["crypto_backend"] = backend_name


@pytest.mark.parametrize("path_length", [2, 4, 8])
def test_opt_full_chain(benchmark, chain_world, path_length):
    """OPT endpoint validation: recompute the whole PVF chain."""
    ases = chain_world["ases"][:path_length]
    session = OptSession.for_endpoints(
        bytes(16), [a.keys.secret.master for a in ases]
    )
    packet = chain_world["packet"]
    pvf = session.traverse(packet)

    benchmark(session.validate, packet, pvf)
    benchmark.extra_info["path_length"] = path_length


def test_onpath_shutoff_handling(benchmark, chain_world):
    """The control-plane cost of one on-path shutoff (Ed25519-bound)."""
    ases = chain_world["ases"]
    source, transit = ases[0], ases[1]
    agent = upgrade_to_onpath(source)
    stamper = PassportStamper(
        AsPairwiseKeys(source.aid, source.keys.exchange, chain_world["rpki"])
    )
    packet = chain_world["packet"]
    stamp = stamper.restamp_mac(packet, transit.aid)
    request = OnPathShutoffRequest.build(
        packet.to_wire(), transit.aid, stamp, transit.keys.signing
    )
    assert agent.handle_onpath_shutoff(request).accepted

    benchmark(agent.handle_onpath_shutoff, request)
    benchmark.extra_info["note"] = "control plane; dominated by Ed25519 verify"
