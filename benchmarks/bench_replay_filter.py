"""E12 bench — in-network replay detection (paper Section VIII-D ablation).

The design bar from the paper: replay filtering "should not affect
routers' forwarding performance".  These benchmarks measure the filter
primitives and the border-router egress pipeline with the filter on and
off, so the penalty is a direct A/B in the benchmark table.

The pipeline arms run over a world pinned per crypto backend (``pure``
vs ``openssl``) so the filter's relative cost is visible against both
the software and the AES-NI data path, and a batched arm shows the
filter inside the §V-B burst loop.
"""

import pytest

from repro.core.border_router import Action, BorderRouter
from repro.core.config import ApnaConfig
from repro.core.replay_filter import BloomFilter, RotatingReplayFilter
from repro.crypto import backend as crypto_backend
from repro.experiments.common import build_bench_world
from repro.wire.apna import Endpoint


@pytest.fixture(scope="module", params=crypto_backend.available_backends())
def replay_world(request):
    with crypto_backend.use_backend(request.param):
        world = build_bench_world(
            seed=1201,
            hosts_per_as=1,
            config=ApnaConfig(
                replay_protection=True, in_network_replay_filter=True
            ),
        )
        world.crypto_backend = request.param
    return world


@pytest.fixture(scope="module")
def packet_stream(replay_world):
    with crypto_backend.use_backend(replay_world.crypto_backend):
        alice = replay_world.hosts_a[0]
        bob = replay_world.hosts_b[0]
        owned = alice.acquire_ephid_direct()
        peer = bob.acquire_ephid_direct()
        stream = [
            alice.stack.make_packet(
                owned.ephid,
                Endpoint(replay_world.as_b.aid, peer.ephid),
                b"x" * 512,
                nonce=n,
            )
            for n in range(1, 257)
        ]
        # Warm the router's lazy per-host CMAC cache *inside* the pinned
        # context: otherwise the first benchmarked packet would create it
        # under the process-default backend and the pure arm would verify
        # MACs on AES-NI.
        verdict = replay_world.as_a.br.process_outgoing(stream[0])
        assert verdict.action is Action.FORWARD_INTER
    return stream


def test_bloom_insert(benchmark):
    bloom = BloomFilter(1 << 20, hashes=4)
    state = {"i": 0}

    def insert():
        state["i"] += 1
        bloom.add(state["i"].to_bytes(24, "big"))

    benchmark(insert)


def test_bloom_negative_lookup(benchmark):
    bloom = BloomFilter(1 << 20, hashes=4)
    for i in range(10_000):
        bloom.add(i.to_bytes(24, "big"))
    probe = (10**9).to_bytes(24, "big")

    benchmark(lambda: probe in bloom)


def test_filter_observe_fresh(benchmark):
    filt = RotatingReplayFilter(window=900.0, bits_per_generation=1 << 20)
    state = {"n": 0}

    def observe():
        state["n"] += 1
        assert filt.observe(b"\x01" * 16, state["n"], now=0.0)

    benchmark(observe)


def test_filter_observe_replay(benchmark):
    filt = RotatingReplayFilter(window=900.0, bits_per_generation=1 << 20)
    filt.observe(b"\x01" * 16, 7, now=0.0)

    def observe_replay():
        assert not filt.observe(b"\x01" * 16, 7, now=0.0)

    benchmark(observe_replay)
    benchmark.extra_info["memory_bytes"] = filt.memory_bytes


def test_egress_with_filter(benchmark, replay_world, packet_stream):
    """A/B arm 1: the Fig. 4 egress pipeline with replay detection on."""
    br = replay_world.as_a.br
    assert br.replay_filter is not None
    # Distinct nonces per iteration would replay across rounds; instead
    # clear the filter each round via a fresh window rotation trick: use
    # per-call unique nonces drawn from a large counter.
    state = {"n": 10**6}
    alice = replay_world.hosts_a[0]
    template = packet_stream[0]
    owned_ephid = template.header.src_ephid
    endpoint = Endpoint(template.header.dst_aid, template.header.dst_ephid)

    def forward():
        state["n"] += 1
        packet = alice.stack.make_packet(
            owned_ephid, endpoint, b"x" * 512, nonce=state["n"]
        )
        verdict = br.process_outgoing(packet)
        assert verdict.action is Action.FORWARD_INTER

    benchmark(forward)
    benchmark.extra_info["arm"] = "filter on"
    benchmark.extra_info["crypto_backend"] = replay_world.crypto_backend


def test_egress_with_filter_batched(benchmark, replay_world, packet_stream):
    """The filter inside the burst pipeline: 64 distinct nonces a round.

    Each round's burst is built in an untimed ``pedantic`` setup so the
    measurement is ``process_batch`` alone — comparable, per packet, with
    the scalar arms' pipeline cost rather than skewed by 64 packet
    constructions inside the timed region.
    """
    br = replay_world.as_a.br
    assert br.replay_filter is not None
    state = {"n": 5 * 10**8}
    alice = replay_world.hosts_a[0]
    template = packet_stream[0]
    owned_ephid = template.header.src_ephid
    endpoint = Endpoint(template.header.dst_aid, template.header.dst_ephid)

    def build_burst():
        make = alice.stack.make_packet
        base = state["n"]
        state["n"] = base + 64
        burst = [
            make(owned_ephid, endpoint, b"x" * 512, nonce=base + i)
            for i in range(64)
        ]
        return (burst,), {}

    def forward_burst(burst):
        verdicts = br.process_batch(burst)
        assert verdicts[-1].action is Action.FORWARD_INTER

    benchmark.pedantic(forward_burst, setup=build_burst, rounds=30)
    benchmark.extra_info["arm"] = "filter on, batched"
    benchmark.extra_info["burst_size"] = 64
    benchmark.extra_info["crypto_backend"] = replay_world.crypto_backend


def test_egress_without_filter(benchmark, replay_world, packet_stream):
    """A/B arm 2: identical pipeline, filter detached."""
    original = replay_world.as_a.br
    with crypto_backend.use_backend(replay_world.crypto_backend):
        bare = BorderRouter(
            original.aid,
            replay_world.as_a.codec,
            replay_world.as_a.hostdb,
            replay_world.as_a.revocations,
            replay_world.network.scheduler.clock(),
            packet_mac_size=replay_world.config.packet_mac_size,
            replay_filter=None,
        )
        # Build the lazy per-host CMAC inside the pinned context.
        verdict = bare.process_outgoing(packet_stream[1])
        assert verdict.action is Action.FORWARD_INTER
    state = {"n": 2 * 10**6}
    alice = replay_world.hosts_a[0]
    template = packet_stream[0]
    owned_ephid = template.header.src_ephid
    endpoint = Endpoint(template.header.dst_aid, template.header.dst_ephid)

    def forward():
        state["n"] += 1
        packet = alice.stack.make_packet(
            owned_ephid, endpoint, b"x" * 512, nonce=state["n"]
        )
        verdict = bare.process_outgoing(packet)
        assert verdict.action is Action.FORWARD_INTER

    benchmark(forward)
    benchmark.extra_info["arm"] = "filter off"
    benchmark.extra_info["crypto_backend"] = replay_world.crypto_backend
