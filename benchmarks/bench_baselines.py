"""E7 bench — per-packet costs across APNA and the baselines (Section IX)."""

import pytest

from repro.baselines import (
    AipHost,
    ApipDelegate,
    ApipSender,
    ApipVerifier,
    PlainIpRouter,
    RoutingTable,
)
from repro.core.border_router import Action
from repro.crypto.rng import DeterministicRng
from repro.experiments import e7_baselines
from repro.wire.apna import ApnaPacket
from repro.workload.packets import build_apna_pool, build_ipv4_pool


def test_apna_accountability_check(benchmark, bench_world):
    pool = build_apna_pool(
        bench_world.as_a, bench_world.hosts_a, size=256, count=64, dst_aid=200
    )
    br = bench_world.as_a.br
    frames = pool.wire_frames
    state = {"i": 0}

    def check():
        packet = ApnaPacket.from_wire(frames[state["i"] % len(frames)])
        state["i"] += 1
        assert br.process_outgoing(packet).action is Action.FORWARD_INTER

    benchmark(check)


def test_apip_brief_and_verify(benchmark):
    delegate = ApipDelegate(addr=1)
    sender = ApipSender(1, delegate, return_addr=2)
    verifier = ApipVerifier(delegate)
    state = {"i": 0}

    def brief_verify():
        packet = sender.send(dst_addr=9, flow_id=state["i"], payload=b"x" * 200)
        state["i"] += 1
        assert verifier.process(packet)

    benchmark(brief_verify)
    benchmark.extra_info["third_party_msgs_per_packet"] = 1


def test_aip_self_certifying_verify(benchmark):
    rng = DeterministicRng(9)
    a, b = AipHost(1, rng), AipHost(2, rng)
    packet = a.send(b, b"z" * 200)
    benchmark(b.verify_source, packet, a.public_key)


def test_plain_ipv4_forward(benchmark):
    routes = RoutingTable()
    routes.add(0, 0, "up")
    router = PlainIpRouter(routes)
    frames = build_ipv4_pool(size=256, count=64).wire_frames
    state = {"i": 0}

    def forward():
        router.process(frames[state["i"] % len(frames)])
        state["i"] += 1

    benchmark(forward)


def test_e7_claims_shape(benchmark):
    """APIP's whitelisting hole and Persona's demux failure, as measured."""
    result = benchmark.pedantic(
        lambda: e7_baselines.run(count=100, quiet=True), rounds=1, iterations=1
    )
    benchmark.extra_info["apip_hole_packets"] = result.apip_hole_packets
    benchmark.extra_info["persona_demux_accuracy"] = round(
        result.persona_demux_accuracy, 3
    )
    assert result.claims_hold
