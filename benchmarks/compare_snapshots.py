#!/usr/bin/env python
"""Diff two ``pytest benchmarks --bench-json`` snapshots.

Usage::

    python benchmarks/compare_snapshots.py OLD.json NEW.json [--threshold 0.25]

Benchmarks are matched by nodeid; for each pair with timing data the
mean-time ratio ``new / old`` is printed, and anything slower than
``1 + threshold`` (default: a 25% regression) is flagged.  Exits 1 if
any regression was flagged, so the script can gate a review:

    python benchmarks/compare_snapshots.py \
        benchmarks/snapshots/BENCH_pr5.json /tmp/BENCH_now.json

Snapshots taken in ``--smoke`` mode carry no timings and compare as
"no data"; the per-PR snapshots under ``benchmarks/snapshots/`` are
full timed runs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load(path: str) -> dict:
    with open(path) as handle:
        payload = json.load(handle)
    if "benchmarks" not in payload:
        raise SystemExit(f"{path}: not a --bench-json snapshot (no 'benchmarks' key)")
    return payload


def index_timings(payload: dict) -> "dict[str, float]":
    means = {}
    for record in payload["benchmarks"]:
        timing = record.get("timing")
        if timing and timing.get("mean_s"):
            means[record["name"]] = timing["mean_s"]
    return means


def compare(old: dict, new: dict, threshold: float):
    """Yield (name, old_mean, new_mean, ratio, flag) rows, sorted by
    descending ratio so regressions lead."""
    old_means = index_timings(old)
    new_means = index_timings(new)
    rows = []
    for name in sorted(old_means.keys() & new_means.keys()):
        ratio = new_means[name] / old_means[name]
        if ratio > 1.0 + threshold:
            flag = "REGRESSION"
        elif ratio < 1.0 - threshold:
            flag = "improved"
        else:
            flag = ""
        rows.append((name, old_means[name], new_means[name], ratio, flag))
    rows.sort(key=lambda row: row[3], reverse=True)
    return rows, sorted(old_means.keys() - new_means.keys()), sorted(
        new_means.keys() - old_means.keys()
    )


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff two --bench-json snapshots and flag regressions."
    )
    parser.add_argument("old", help="baseline snapshot (e.g. the last PR's)")
    parser.add_argument("new", help="candidate snapshot")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="relative slowdown that counts as a regression (default 0.25)",
    )
    args = parser.parse_args(argv)

    old, new = load(args.old), load(args.new)
    for label, payload, path in (("old", old, args.old), ("new", new, args.new)):
        backend = payload.get("default_crypto_backend", "?")
        mode = "smoke (no timings)" if payload.get("smoke") else "timed"
        print(f"{label}: {Path(path).name}  backend={backend}  {mode}")
    print()

    rows, removed, added = compare(old, new, args.threshold)
    if not rows:
        print("no benchmarks with timings in common — nothing to compare")
        return 0

    width = max(len(name) for name, *_ in rows)
    print(f"{'benchmark':<{width}}  {'old':>10}  {'new':>10}  {'ratio':>7}")
    for name, old_mean, new_mean, ratio, flag in rows:
        print(
            f"{name:<{width}}  {old_mean * 1e6:>9.1f}u  {new_mean * 1e6:>9.1f}u  "
            f"{ratio:>6.2f}x  {flag}"
        )
    for name in removed:
        print(f"(removed) {name}")
    for name in added:
        print(f"(new)     {name}")

    regressions = [row for row in rows if row[4] == "REGRESSION"]
    print()
    print(
        f"{len(rows)} compared, {len(regressions)} regression(s) over "
        f"{args.threshold:.0%}, {len(added)} new, {len(removed)} removed"
    )
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
