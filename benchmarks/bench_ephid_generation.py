"""E1 bench — EphID issuance rate (paper Section V-A3).

Paper: 500k requests in 6.9 s on 4 cores = 13.7 us/EphID = 72.8k/s,
18.7x the trace's peak demand of 3,888 sessions/s.  The raw Fig. 6
seal/open micro-benchmarks run once per crypto backend (``pure`` vs
``openssl``), quantifying the paper's AES-NI-vs-software gap on the
construction itself.
"""

import pytest

from repro.core.ephid import EphIdCodec
from repro.crypto import backend as crypto_backend
from repro.workload import TraceConfig, TraceGenerator, analyze

ENC_KEY = bytes(range(16))
MAC_KEY = bytes(range(16, 32))


def test_ephid_issuance_full_path(benchmark, bench_world, bench_host):
    """The complete Fig. 3 MS path (decrypt, checks, issue, seal reply).

    Requests are prepared up front so only the MS side is timed, exactly
    as the paper's measurement isolates the server.
    """
    ms = bench_world.as_a.ms
    ctrl = bench_host.stack.control_ephid
    prepared = [sealed for _, sealed in (bench_host.stack.build_ephid_request() for _ in range(64))]
    state = {"i": 0}

    def issue_one():
        sealed = prepared[state["i"] % len(prepared)]
        state["i"] += 1
        ms.handle_request(ctrl, sealed)

    benchmark(issue_one)
    benchmark.extra_info["paper_us_per_ephid"] = 13.7


@pytest.mark.parametrize("backend_name", crypto_backend.available_backends())
def test_ephid_seal_only(benchmark, backend_name):
    """The raw Fig. 6 construction (2 AES ops), the paper's inner loop."""
    codec = EphIdCodec(
        ENC_KEY, MAC_KEY, backend=crypto_backend.get_backend(backend_name)
    )
    state = {"iv": 0}

    def seal():
        state["iv"] = (state["iv"] + 1) % 2**32
        codec.seal(hid=0x10000, exp_time=10**9, iv=state["iv"])

    benchmark(seal)
    benchmark.extra_info["crypto_backend"] = backend_name


@pytest.mark.parametrize("backend_name", crypto_backend.available_backends())
def test_ephid_open_only(benchmark, backend_name):
    """Stateless EphID decode — the border router's per-packet operation."""
    codec = EphIdCodec(
        ENC_KEY, MAC_KEY, backend=crypto_backend.get_backend(backend_name)
    )
    ephid = codec.seal(hid=0x10000, exp_time=10**9, iv=42)
    benchmark(codec.open, ephid)
    benchmark.extra_info["crypto_backend"] = backend_name


def test_issuance_rate_exceeds_trace_peak(benchmark, bench_world, bench_host):
    """The paper's headline claim, at our scale: issuance rate (this
    machine) exceeds the peak per-flow EphID demand of a scaled trace."""
    from repro.metrics import time_loop

    trace = TraceGenerator(TraceConfig(hosts=2_000, duration=14_400.0)).generate_arrays()
    stats = analyze(trace)
    ms = bench_world.as_a.ms
    ctrl = bench_host.stack.control_ephid
    prepared = [sealed for _, sealed in (bench_host.stack.build_ephid_request() for _ in range(64))]
    state = {"i": 0}

    def issue_one():
        sealed = prepared[state["i"] % len(prepared)]
        state["i"] += 1
        ms.handle_request(ctrl, sealed)

    benchmark(issue_one)
    # An independent timed loop for the headroom assertion.
    repeat = 50
    seconds = time_loop(issue_one, repeat=repeat)
    rate = repeat / seconds
    benchmark.extra_info["issuance_per_sec"] = round(rate)
    benchmark.extra_info["trace_peak_demand"] = stats.peak_sessions_per_second
    benchmark.extra_info["headroom_x"] = round(rate / stats.peak_sessions_per_second, 2)
    benchmark.extra_info["paper_headroom_x"] = 18.7
    assert rate > stats.peak_sessions_per_second
