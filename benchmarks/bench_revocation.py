"""E6 bench — revocation-list operations (paper Section VIII-G2).

Besides the list primitives, the pipeline arms time the per-packet
revocation check where it actually runs — inside the border-router
egress loop with a 10k-entry ``revoked_ids`` list — over a world pinned
per crypto backend, scalar and batched (the §V-B burst regime prunes
once per burst instead of once per packet).
"""

import pytest

from repro.core.border_router import Action
from repro.core.revocation import RevocationList
from repro.crypto import backend as crypto_backend
from repro.crypto.rng import DeterministicRng
from repro.experiments import e6_revocation
from repro.experiments.common import build_bench_world
from repro.workload.packets import build_apna_pool


@pytest.fixture(scope="module")
def loaded_list():
    revs = RevocationList()
    rng = DeterministicRng(6)
    for i in range(10_000):
        revs.add(rng.read(16), 1e9 + i)
    return revs, rng


def test_revocation_lookup(benchmark, loaded_list):
    """The per-packet check every border router does (Fig. 4)."""
    revs, rng = loaded_list
    probe = rng.read(16)
    benchmark(revs.contains, probe)


def test_revocation_insert(benchmark):
    revs = RevocationList()
    rng = DeterministicRng(7)
    ephids = [rng.read(16) for _ in range(4096)]
    state = {"i": 0}

    def insert():
        revs.add(ephids[state["i"] % len(ephids)], 1e9 + state["i"])
        state["i"] += 1

    benchmark(insert)


def test_prune_amortized(benchmark):
    """Expiry pruning cost when entries age out continuously."""
    rng = DeterministicRng(8)

    def build_and_prune():
        revs = RevocationList()
        for i in range(500):
            revs.add(rng.read(16), float(i))
        return revs.prune(now=250.0)

    pruned = benchmark.pedantic(build_and_prune, rounds=5, iterations=1)
    assert pruned == 250


@pytest.fixture(scope="module", params=crypto_backend.available_backends())
def loaded_world(request):
    """A backend-pinned world whose router carries 10k live revocations."""
    with crypto_backend.use_backend(request.param):
        world = build_bench_world(seed=601, hosts_per_as=2)
        rng = DeterministicRng(66)
        for i in range(10_000):
            world.as_a.revocations.add(rng.read(16), 1e12 + i)
        packets = build_apna_pool(
            world.as_a, world.hosts_a, size=512, count=64, dst_aid=200
        ).apna_packets
        for verdict in world.as_a.br.process_batch(list(packets)):
            assert verdict.action is Action.FORWARD_INTER
    return request.param, world, packets


@pytest.mark.parametrize("mode", ["scalar", "batch"])
def test_egress_with_loaded_revocations(benchmark, loaded_world, mode):
    """Fig. 4's revoked_ids check under load, per backend and per mode."""
    name, world, packets = loaded_world
    br = world.as_a.br

    if mode == "scalar":

        def run_burst():
            process = br.process_outgoing
            for packet in packets:
                verdict = process(packet)
            assert verdict.action is Action.FORWARD_INTER

    else:

        def run_burst():
            verdicts = br.process_batch(packets)
            assert verdicts[-1].action is Action.FORWARD_INTER

    benchmark(run_burst)
    benchmark.extra_info["crypto_backend"] = name
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["burst_size"] = 64
    benchmark.extra_info["revoked_entries"] = 10_000


def test_e6_growth_shape(benchmark):
    """Bounded-vs-unbounded list growth, the Section VIII-G2 claim."""
    result = benchmark.pedantic(
        lambda: e6_revocation.run(duration=3600.0, quiet=True), rounds=1, iterations=1
    )
    benchmark.extra_info["final_pruned"] = result.pruned_sizes[-1]
    benchmark.extra_info["final_unpruned"] = result.unpruned_sizes[-1]
    benchmark.extra_info["hids_revoked"] = result.hids_revoked
    assert result.pruning_wins
