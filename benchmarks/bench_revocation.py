"""E6 bench — revocation-list operations (paper Section VIII-G2)."""

import pytest

from repro.core.revocation import RevocationList
from repro.crypto.rng import DeterministicRng
from repro.experiments import e6_revocation


@pytest.fixture(scope="module")
def loaded_list():
    revs = RevocationList()
    rng = DeterministicRng(6)
    for i in range(10_000):
        revs.add(rng.read(16), 1e9 + i)
    return revs, rng


def test_revocation_lookup(benchmark, loaded_list):
    """The per-packet check every border router does (Fig. 4)."""
    revs, rng = loaded_list
    probe = rng.read(16)
    benchmark(revs.contains, probe)


def test_revocation_insert(benchmark):
    revs = RevocationList()
    rng = DeterministicRng(7)
    ephids = [rng.read(16) for _ in range(4096)]
    state = {"i": 0}

    def insert():
        revs.add(ephids[state["i"] % len(ephids)], 1e9 + state["i"])
        state["i"] += 1

    benchmark(insert)


def test_prune_amortized(benchmark):
    """Expiry pruning cost when entries age out continuously."""
    rng = DeterministicRng(8)

    def build_and_prune():
        revs = RevocationList()
        for i in range(500):
            revs.add(rng.read(16), float(i))
        return revs.prune(now=250.0)

    pruned = benchmark.pedantic(build_and_prune, rounds=5, iterations=1)
    assert pruned == 250


def test_e6_growth_shape(benchmark):
    """Bounded-vs-unbounded list growth, the Section VIII-G2 claim."""
    result = benchmark.pedantic(
        lambda: e6_revocation.run(duration=3600.0, quiet=True), rounds=1, iterations=1
    )
    benchmark.extra_info["final_pruned"] = result.pruned_sizes[-1]
    benchmark.extra_info["final_unpruned"] = result.unpruned_sizes[-1]
    benchmark.extra_info["hids_revoked"] = result.hids_revoked
    assert result.pruning_wins
