"""Scenario-API bench — world construction and profile-driven traffic.

Times what every experiment pays before measuring anything: building a
world from a preset / spec, and driving a multi-flow
:class:`~repro.workload.TrafficProfile` through it.  The paper-shape
verdicts: a built world routes end-to-end, and the profile delivers
every offered flow.
"""

from repro import TopologySpec, World, scenarios
from repro.workload import TraceConfig, TrafficProfile


def test_build_fig1(benchmark):
    world = benchmark(lambda: scenarios.build("fig1", seed=1))
    assert world.as_path("a", "b") == [100, 200]
    benchmark.extra_info["ases"] = len(world.ases)


def test_build_transit_stub_hierarchy(benchmark):
    spec = TopologySpec.transit_stub(3, 2)

    world = benchmark(lambda: World.from_spec(spec, seed=1))
    assert world.as_path("t1s0", "t3s1") == [100, 1, 3, 301]
    benchmark.extra_info["ases"] = len(world.ases)
    benchmark.extra_info["links"] = len(spec.links)


def test_traffic_profile_on_chain(benchmark):
    profile = TrafficProfile(
        trace=TraceConfig(hosts=32, duration=300.0),
        clients=4,
        servers=2,
        max_flows=60,
    )

    def scenario():
        world = scenarios.build("chain:3", seed=7)
        return profile.drive(world)

    report = benchmark.pedantic(scenario, rounds=3, iterations=1)
    benchmark.extra_info["flows"] = report.flows_offered
    benchmark.extra_info["events"] = report.events
    assert report.sessions_opened == report.flows_offered
    assert report.delivery_ratio == 1.0
